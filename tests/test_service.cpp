// SolveService robustness: every submitted request reaches EXACTLY ONE
// well-formed terminal outcome through overload, cancellation, injected
// worker crashes, warm-start caching, and drain/shutdown — including a
// 72-session stress burst over a 4-worker pool (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "coloring/encoder.h"
#include "graph/generators.h"
#include "service/solve_service.h"

namespace symcolor {
namespace {

// PHP(p, h): satisfiable iff p <= h; PHP(p+1, p) needs exponential
// clausal refutations, which makes it the knob for "slow" sessions.
std::shared_ptr<const Formula> pigeonhole(int pigeons, int holes) {
  auto f = std::make_shared<Formula>();
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f->new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f->add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f->add_clause({Lit::negative(in[static_cast<std::size_t>(p1)]
                                       [static_cast<std::size_t>(h)]),
                       Lit::negative(in[static_cast<std::size_t>(p2)]
                                       [static_cast<std::size_t>(h)])});
      }
    }
  }
  return f;
}

std::shared_ptr<const Formula> easy_sat() { return pigeonhole(4, 5); }
std::shared_ptr<const Formula> easy_unsat() { return pigeonhole(5, 4); }
// Hard enough that a solve occupies a worker until a budget or cancel
// ends it (PHP(10,9) takes >> 10^5 conflicts clausally).
std::shared_ptr<const Formula> slow_unsat() { return pigeonhole(10, 9); }

SolveRequest decision(std::shared_ptr<const Formula> f) {
  SolveRequest r;
  r.formula = std::move(f);
  return r;
}

void spin_until_running(const SolveService& service) {
  while (service.stats().running_now == 0) {
    std::this_thread::yield();
  }
}

// ---- basic outcomes ----

TEST(ServiceBasics, DecisionSessionsReachSatAndUnsat) {
  SolveService service(ServiceConfig{.workers = 2});
  const SessionId sat_id = service.submit(decision(easy_sat()));
  const SessionId unsat_id = service.submit(decision(easy_unsat()));

  const SessionResult sat = service.wait(sat_id);
  EXPECT_EQ(sat.outcome, SessionOutcome::Sat);
  EXPECT_TRUE(sat.well_formed());
  EXPECT_FALSE(sat.model.empty());

  const SessionResult unsat = service.wait(unsat_id);
  EXPECT_EQ(unsat.outcome, SessionOutcome::Unsat);
  EXPECT_TRUE(unsat.well_formed());
}

TEST(ServiceBasics, MinimizeSessionProvesOptimum) {
  // Triangle: chromatic number 3; minimize over a 4-color encoding.
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  triangle.finalize();
  ColoringEncoding enc = encode_coloring(triangle, 4);

  SolveRequest request;
  request.formula = std::make_shared<Formula>(std::move(enc.formula));
  request.minimize = true;
  SolveService service(ServiceConfig{.workers = 1});
  const SessionResult r = service.wait(service.submit(std::move(request)));
  EXPECT_EQ(r.outcome, SessionOutcome::Sat);
  EXPECT_TRUE(r.well_formed());
  EXPECT_EQ(r.best_value, 3);
  EXPECT_EQ(r.lower_bound, 3);
}

TEST(ServiceBasics, ResultsDeliveredExactlyOnce) {
  SolveService service(ServiceConfig{.workers = 2});
  constexpr int kSessions = 8;
  std::map<SessionId, int> delivered;
  for (int i = 0; i < kSessions; ++i) service.submit(decision(easy_sat()));

  SessionId id = kInvalidSession;
  SessionResult result;
  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(service.wait_any(&id, &result));
    ++delivered[id];
    EXPECT_TRUE(result.well_formed());
  }
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(kSessions));
  for (const auto& [sid, count] : delivered) EXPECT_EQ(count, 1) << sid;
  // A second wait on a delivered id reports the error explicitly.
  EXPECT_EQ(service.wait(id).outcome, SessionOutcome::Failed);
}

TEST(ServiceBasics, RequestWithoutFormulaFailsWellFormed) {
  SolveService service(ServiceConfig{.workers = 1});
  const SessionResult r = service.wait(service.submit(SolveRequest{}));
  EXPECT_EQ(r.outcome, SessionOutcome::Failed);
  EXPECT_TRUE(r.well_formed());
}

// ---- admission control / load shedding ----

TEST(ServiceAdmission, SaturatedQueueShedsNewestWithRetryHint) {
  SolveService service(
      ServiceConfig{.workers = 1, .queue_capacity = 2});
  // Occupy the single worker, then fill the queue.
  const SessionId running = service.submit(decision(slow_unsat()));
  spin_until_running(service);
  const SessionId q1 = service.submit(decision(easy_sat()));
  const SessionId q2 = service.submit(decision(easy_sat()));
  // Queue full: the NEWEST request is rejected immediately.
  const SessionId shed = service.submit(decision(easy_sat()));
  const SessionResult r = service.wait(shed);
  EXPECT_EQ(r.outcome, SessionOutcome::Rejected);
  EXPECT_EQ(r.reject_reason, RejectReason::QueueFull);
  EXPECT_GT(r.retry_after_seconds, 0.0);
  EXPECT_TRUE(r.well_formed());

  // Accepted work is never dropped: cancel the hog and everything
  // admitted still reaches its terminal outcome.
  EXPECT_TRUE(service.cancel(running));
  EXPECT_EQ(service.wait(running).outcome, SessionOutcome::Cancelled);
  EXPECT_EQ(service.wait(q1).outcome, SessionOutcome::Sat);
  EXPECT_EQ(service.wait(q2).outcome, SessionOutcome::Sat);
}

// ---- cancellation ----

TEST(ServiceCancel, MidFlightCancellationInterruptsTheSolve) {
  SolveService service(ServiceConfig{.workers = 1});
  const SessionId id = service.submit(decision(slow_unsat()));
  spin_until_running(service);
  EXPECT_TRUE(service.cancel(id));
  const SessionResult r = service.wait(id);
  EXPECT_EQ(r.outcome, SessionOutcome::Cancelled);
  EXPECT_EQ(r.trip, BudgetTrip::Interrupt);
  EXPECT_TRUE(r.well_formed());
  // Cancelling a finished session reports false.
  EXPECT_FALSE(service.cancel(id));
}

TEST(ServiceCancel, QueuedSessionCancelsWithoutEngineWork) {
  SolveService service(ServiceConfig{.workers = 1});
  const SessionId hog = service.submit(decision(slow_unsat()));
  spin_until_running(service);
  const SessionId queued = service.submit(decision(easy_sat()));
  EXPECT_TRUE(service.cancel(queued));
  EXPECT_TRUE(service.cancel(hog));
  const SessionResult r = service.wait(queued);
  EXPECT_EQ(r.outcome, SessionOutcome::Cancelled);
  EXPECT_TRUE(r.well_formed());
  EXPECT_EQ(r.stats.conflicts, 0);  // shed at dequeue, zero engine work
  EXPECT_EQ(service.wait(hog).outcome, SessionOutcome::Cancelled);
  EXPECT_GE(service.stats().shed_on_arrival, 1);
}

// ---- deadlines (FIFO-with-deadline fairness) ----

TEST(ServiceDeadline, PerRequestTimeoutDegradesGracefully) {
  SolveService service(ServiceConfig{.workers = 1});
  SolveRequest request = decision(slow_unsat());
  request.timeout_seconds = 0.05;
  const SessionResult r = service.wait(service.submit(std::move(request)));
  EXPECT_EQ(r.outcome, SessionOutcome::Degraded);
  EXPECT_EQ(r.trip, BudgetTrip::Deadline);
  EXPECT_TRUE(r.well_formed());
  EXPECT_TRUE(r.model.empty());  // Unknown never fabricates a model
}

TEST(ServiceDeadline, ConflictBudgetDegradesWithTripRecorded) {
  SolveService service(ServiceConfig{.workers = 1});
  SolveRequest request = decision(slow_unsat());
  request.conflict_budget = 50;
  const SessionResult r = service.wait(service.submit(std::move(request)));
  EXPECT_EQ(r.outcome, SessionOutcome::Degraded);
  EXPECT_EQ(r.trip, BudgetTrip::Conflicts);
  EXPECT_TRUE(r.well_formed());
}

TEST(ServiceDeadline, DeadOnArrivalSessionsAreShedAtDequeue) {
  // The deadline starts ticking at SUBMIT: a request whose budget dies
  // in the queue is shed in O(1) when a worker picks it up.
  SolveService service(ServiceConfig{.workers = 1});
  const SessionId hog = service.submit(decision(slow_unsat()));
  spin_until_running(service);
  SolveRequest doomed = decision(easy_sat());
  doomed.timeout_seconds = 1e-4;  // spent long before the hog finishes
  const SessionId id = service.submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.cancel(hog);
  const SessionResult r = service.wait(id);
  EXPECT_EQ(r.outcome, SessionOutcome::Degraded);
  EXPECT_EQ(r.trip, BudgetTrip::Deadline);
  EXPECT_EQ(r.stats.conflicts, 0);
  EXPECT_TRUE(r.well_formed());
  service.wait(hog);
  EXPECT_GE(service.stats().shed_on_arrival, 1);
}

// ---- fault isolation ----

TEST(ServiceFaults, InjectedCrashFailsOnlyThatSession) {
  SolveService service(ServiceConfig{.workers = 2});
  SolveRequest faulty = decision(easy_unsat());
  faulty.config.fault_injection.worker = -1;
  faulty.config.fault_injection.throw_after_conflicts = 1;
  const SessionId bad = service.submit(std::move(faulty));
  const SessionId good = service.submit(decision(easy_sat()));

  const SessionResult br = service.wait(bad);
  EXPECT_EQ(br.outcome, SessionOutcome::Failed);
  EXPECT_FALSE(br.error.empty());
  EXPECT_TRUE(br.well_formed());

  // The worker that absorbed the crash keeps serving.
  EXPECT_EQ(service.wait(good).outcome, SessionOutcome::Sat);
  const SessionId after = service.submit(decision(easy_unsat()));
  EXPECT_EQ(service.wait(after).outcome, SessionOutcome::Unsat);
}

TEST(ServiceFaults, CachedMasterSurvivesFaultyClone) {
  SolveService service(ServiceConfig{.workers = 1, .cache_capacity = 4});
  auto base = easy_unsat();

  SolveRequest warm = decision(base);
  warm.cache_key = "php/5/4";
  EXPECT_EQ(service.wait(service.submit(std::move(warm))).outcome,
            SessionOutcome::Unsat);

  SolveRequest faulty = decision(base);
  faulty.cache_key = "php/5/4";
  faulty.config.fault_injection.worker = -1;
  faulty.config.fault_injection.throw_after_conflicts = 1;
  EXPECT_EQ(service.wait(service.submit(std::move(faulty))).outcome,
            SessionOutcome::Failed);

  // The resident master never saw the fault spec: the next hit under the
  // same key clones a healthy engine.
  SolveRequest again = decision(base);
  again.cache_key = "php/5/4";
  EXPECT_EQ(service.wait(service.submit(std::move(again))).outcome,
            SessionOutcome::Unsat);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 2);
}

// ---- drain / shutdown ----

TEST(ServiceShutdown, DrainRejectsQueuedAndDegradesRunning) {
  SolveService service(
      ServiceConfig{.workers = 1, .queue_capacity = 8});
  const SessionId running = service.submit(decision(slow_unsat()));
  spin_until_running(service);
  const SessionId queued = service.submit(decision(easy_sat()));

  service.shutdown(/*grace_seconds=*/0.02);

  const SessionResult qr = service.wait(queued);
  EXPECT_EQ(qr.outcome, SessionOutcome::Rejected);
  EXPECT_EQ(qr.reject_reason, RejectReason::ShuttingDown);
  EXPECT_TRUE(qr.well_formed());

  // The in-flight session outlived the grace window, was interrupted by
  // the service budget, and degraded gracefully.
  const SessionResult rr = service.wait(running);
  EXPECT_EQ(rr.outcome, SessionOutcome::Degraded);
  EXPECT_EQ(rr.trip, BudgetTrip::Interrupt);
  EXPECT_TRUE(rr.well_formed());

  // Submits after shutdown are rejected, not lost.
  const SessionResult late = service.wait(service.submit(decision(easy_sat())));
  EXPECT_EQ(late.outcome, SessionOutcome::Rejected);
  EXPECT_EQ(late.reject_reason, RejectReason::ShuttingDown);
}

TEST(ServiceShutdown, GracefulDrainLetsInFlightWorkFinish) {
  SolveService service(ServiceConfig{.workers = 2});
  const SessionId a = service.submit(decision(easy_sat()));
  const SessionId b = service.submit(decision(easy_unsat()));
  // Drain rejects QUEUED sessions by design; wait until the workers have
  // picked both up so the grace window is what decides their fate.
  while (service.stats().queued_now > 0) std::this_thread::yield();
  service.shutdown(/*grace_seconds=*/30.0);
  EXPECT_EQ(service.wait(a).outcome, SessionOutcome::Sat);
  EXPECT_EQ(service.wait(b).outcome, SessionOutcome::Unsat);
}

// ---- the acceptance stress: 72 concurrent sessions, 4 workers ----

TEST(ServiceStress, EveryRequestReachesExactlyOneWellFormedOutcome) {
  SolveService service(ServiceConfig{
      .workers = 4, .queue_capacity = 16, .cache_capacity = 4});
  constexpr int kRequests = 72;

  std::vector<SessionId> ids;
  ids.reserve(kRequests);
  std::vector<SessionId> cancel_targets;
  for (int i = 0; i < kRequests; ++i) {
    SolveRequest request;
    switch (i % 6) {
      case 0:  // easy SAT
        request = decision(easy_sat());
        break;
      case 1:  // easy UNSAT, warm-started
        request = decision(easy_unsat());
        request.cache_key = "stress/php54";
        break;
      case 2:  // over-budget: degrades on its conflict cap
        request = decision(pigeonhole(8, 7));
        request.conflict_budget = 64;
        break;
      case 3:  // injected crash behind the session barrier
        request = decision(easy_unsat());
        request.config.fault_injection.worker = -1;
        request.config.fault_injection.throw_after_conflicts = 1;
        break;
      case 4:  // slow with a deadline backstop; half get cancelled below
        request = decision(slow_unsat());
        request.timeout_seconds = 0.5;
        break;
      default:  // parallel portfolio session
        request = decision(easy_unsat());
        request.config.portfolio_threads = 2;
        break;
    }
    const SessionId id = service.submit(std::move(request));
    ids.push_back(id);
    if (i % 12 == 4) cancel_targets.push_back(id);
  }

  // Async cancellations racing the burst.
  std::thread canceller([&] {
    for (const SessionId id : cancel_targets) service.cancel(id);
  });

  std::map<SessionId, SessionResult> delivered;
  SessionId id = kInvalidSession;
  SessionResult result;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(service.wait_any(&id, &result)) << "service starved a request";
    EXPECT_TRUE(delivered.emplace(id, result).second)
        << "session " << id << " delivered twice";
    EXPECT_TRUE(result.well_formed())
        << "session " << id << " outcome "
        << session_outcome_name(result.outcome) << " ill-formed";
  }
  canceller.join();

  // Exactly one terminal outcome per submitted request, none invented.
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kRequests));
  for (const SessionId sid : ids) EXPECT_TRUE(delivered.count(sid)) << sid;

  // Load shedding may legally reject any request, but an ADMITTED request
  // must land in the outcome set its construction implies.
  for (int i = 0; i < kRequests; ++i) {
    const SessionResult& r = delivered.at(ids[static_cast<std::size_t>(i)]);
    if (r.outcome == SessionOutcome::Rejected) continue;
    switch (i % 6) {
      case 0:
        EXPECT_EQ(r.outcome, SessionOutcome::Sat) << "request " << i;
        break;
      case 1:
      case 5:
        EXPECT_EQ(r.outcome, SessionOutcome::Unsat) << "request " << i;
        break;
      case 2:  // conflict cap far below PHP(8,7)'s refutation cost
        EXPECT_EQ(r.outcome, SessionOutcome::Degraded) << "request " << i;
        EXPECT_EQ(r.trip, BudgetTrip::Conflicts) << "request " << i;
        break;
      case 3:  // the crash is contained, never leaks past the session
        EXPECT_EQ(r.outcome, SessionOutcome::Failed) << "request " << i;
        EXPECT_FALSE(r.error.empty()) << "request " << i;
        break;
      default:  // slow: cut by its deadline unless a cancel landed first
        EXPECT_TRUE(r.outcome == SessionOutcome::Degraded ||
                    r.outcome == SessionOutcome::Cancelled)
            << "request " << i << " outcome "
            << session_outcome_name(r.outcome);
        break;
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed(), kRequests);
  // The first requests are admitted before the pool can saturate, so each
  // distinguished behaviour is observed at least once...
  EXPECT_GE(stats.sat, 1);
  EXPECT_GE(stats.failed, 1);
  EXPECT_GE(stats.degraded + stats.cancelled, 1);
  // ...and 72 near-instant submissions over 4 workers hogged by ~9 s PHP
  // solves must overflow the 16-slot queue.
  EXPECT_GE(stats.rejected, 1);
  // The process survived every injected fault and still answers.
  const SessionResult after =
      service.wait(service.submit(decision(easy_sat())));
  EXPECT_EQ(after.outcome, SessionOutcome::Sat);
}

}  // namespace
}  // namespace symcolor
