// Portfolio / SolverEngine tests: clone equivalence, deterministic-mode
// reproducibility, core-clause import soundness on the queen/myciel
// suite, 2-vs-1-thread agreement across the SAT-loop and PB optimizer
// paths, restart blocking, the conflict-interval reduce schedule, and
// per-worker seed mixing.

#include <gtest/gtest.h>

#include <memory>

#include "cnf/formula.h"
#include "coloring/cnf_coloring.h"
#include "coloring/encoder.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "sat/portfolio.h"
#include "util/rng.h"

namespace symcolor {
namespace {

Formula pigeonhole_formula(int pigeons, int holes) {
  Formula f;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(in[static_cast<std::size_t>(p)]
                                  [static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.add_clause({Lit::negative(in[static_cast<std::size_t>(p1)]
                                      [static_cast<std::size_t>(h)]),
                      Lit::negative(in[static_cast<std::size_t>(p2)]
                                      [static_cast<std::size_t>(h)])});
      }
    }
  }
  return f;
}

/// queen5 K-colorability CNF (chi(queen5) = 5, so k=4 is UNSAT, k=5 SAT).
Formula queen5_formula(int k) {
  const Graph g = make_queen_graph(5, 5);
  return encode_k_coloring(g, k, SbpOptions::nu_sc()).formula;
}

// ---- SolverEngine interface ----

TEST(SolverEngineIface, FactoryPicksBackendByThreadCount) {
  const Formula sat = queen5_formula(5);
  const Formula unsat = queen5_formula(4);
  for (const int threads : {1, 3}) {
    SolverConfig config = profile_config(SolverKind::PbsII);
    config.portfolio_threads = threads;
    const std::unique_ptr<SolverEngine> a = make_solver_engine(sat, config);
    EXPECT_EQ(a->solve(), SolveResult::Sat) << threads << " threads";
    EXPECT_TRUE(sat.satisfied_by(a->model()));
    const std::unique_ptr<SolverEngine> b = make_solver_engine(unsat, config);
    EXPECT_EQ(b->solve(), SolveResult::Unsat) << threads << " threads";
  }
}

TEST(SolverEngineIface, CloneThroughInterfaceIsIndependent) {
  const Formula f = queen5_formula(5);
  const std::unique_ptr<SolverEngine> master =
      make_solver_engine(f, profile_config(SolverKind::PbsII));
  const std::unique_ptr<SolverEngine> copy = master->clone();
  EXPECT_EQ(master->solve(), SolveResult::Sat);
  // Constraints added to the original never reach the earlier clone.
  EXPECT_EQ(copy->num_vars(), master->num_vars());
  EXPECT_EQ(copy->solve(), SolveResult::Sat);
}

// ---- clone equivalence ----

TEST(SolverClone, ReproducesResultAndStatsOnFixedInstance) {
  for (const int k : {4, 5}) {
    const Formula f = queen5_formula(k);
    const CdclSolver master(f, profile_config(SolverKind::PbsII));
    CdclSolver clone(master);
    CdclSolver reference(f, profile_config(SolverKind::PbsII));
    const SolveResult rc = clone.solve();
    const SolveResult rr = reference.solve();
    EXPECT_EQ(rc, rr) << "k=" << k;
    // Identical state + identical config => the clone must retrace the
    // master's search step for step.
    EXPECT_EQ(clone.stats().decisions, reference.stats().decisions);
    EXPECT_EQ(clone.stats().conflicts, reference.stats().conflicts);
    EXPECT_EQ(clone.stats().propagations, reference.stats().propagations);
    EXPECT_EQ(clone.stats().restarts, reference.stats().restarts);
    EXPECT_EQ(clone.stats().learned_clauses,
              reference.stats().learned_clauses);
    if (rc == SolveResult::Sat) {
      EXPECT_EQ(clone.model(), reference.model());
    }
  }
}

TEST(SolverClone, MidSearchCloneCarriesLearnedState) {
  SolverConfig budgeted = profile_config(SolverKind::PbsII);
  budgeted.conflict_budget = 100;
  CdclSolver master(pigeonhole_formula(7, 6), budgeted);
  ASSERT_EQ(master.solve(), SolveResult::Unknown);  // budget must bite
  ASSERT_GT(master.stats().learned_clauses, 0);

  CdclSolver clone(master);
  SolverConfig unlimited = budgeted;
  unlimited.conflict_budget = 0;
  master.reconfigure(unlimited);
  clone.reconfigure(unlimited);
  EXPECT_EQ(master.solve(), SolveResult::Unsat);
  EXPECT_EQ(clone.solve(), SolveResult::Unsat);
  // Same mid-search snapshot, same config: the continuations coincide.
  EXPECT_EQ(master.stats().conflicts, clone.stats().conflicts);
  EXPECT_EQ(master.stats().decisions, clone.stats().decisions);
  EXPECT_EQ(master.stats().propagations, clone.stats().propagations);
}

// ---- portfolio determinism and soundness ----

TEST(Portfolio, DeterministicModeIsReproducible) {
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 4;
  config.portfolio_deterministic = true;
  const Formula f = queen5_formula(5);

  PortfolioSolver a(f, config);
  PortfolioSolver b(f, config);
  ASSERT_EQ(a.solve(), SolveResult::Sat);
  ASSERT_EQ(b.solve(), SolveResult::Sat);
  EXPECT_EQ(a.model(), b.model());
  EXPECT_EQ(a.last_winner(), b.last_winner());

  // The deterministic winner is the lowest-indexed definitive worker —
  // the master — so the surfaced model matches the sequential engine's.
  SolverConfig sequential = config;
  sequential.portfolio_threads = 1;
  CdclSolver reference(f, sequential);
  ASSERT_EQ(reference.solve(), SolveResult::Sat);
  EXPECT_EQ(a.last_winner(), 0);
  EXPECT_EQ(a.model(), reference.model());
}

TEST(Portfolio, ImportSoundnessOnQueenMycielSuite) {
  // Racing mode with clause sharing on: imported core clauses must never
  // flip a SAT/UNSAT answer. chi(queen5) = 5, chi(myciel3) = 4.
  struct Case {
    Formula formula;
    SolveResult expected;
  };
  std::vector<Case> cases;
  cases.push_back({queen5_formula(4), SolveResult::Unsat});
  cases.push_back({queen5_formula(5), SolveResult::Sat});
  const Graph myciel = make_myciel_dimacs(3);
  cases.push_back({encode_k_coloring(myciel, 3, SbpOptions::nu_sc()).formula,
                   SolveResult::Unsat});
  cases.push_back({encode_k_coloring(myciel, 4, SbpOptions::nu_sc()).formula,
                   SolveResult::Sat});

  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 4;
  config.share_max_lbd = 3;  // share a little more than the default glue
  for (const Case& c : cases) {
    for (int round = 0; round < 3; ++round) {  // vary thread interleaving
      PortfolioSolver solver(c.formula, config);
      EXPECT_EQ(solver.solve(), c.expected) << "round " << round;
      if (c.expected == SolveResult::Sat) {
        EXPECT_TRUE(c.formula.satisfied_by(solver.model()));
      }
    }
  }
}

TEST(Portfolio, IncrementalModelEnumerationMatchesSequential) {
  // Enumerate all models of "exactly one of three vars" by repeatedly
  // blocking the last model through the engine interface: the count must
  // be 3 at any thread count, proving add_clause lands in the master and
  // survives the parallel solves.
  for (const int threads : {1, 2, 4}) {
    Formula f;
    const Var v0 = f.new_var();
    const Var v1 = f.new_var();
    const Var v2 = f.new_var();
    f.add_exactly({Lit::positive(v0), Lit::positive(v1), Lit::positive(v2)},
                  1);
    SolverConfig config = profile_config(SolverKind::PbsII);
    config.portfolio_threads = threads;
    const std::unique_ptr<SolverEngine> engine = make_solver_engine(f, config);
    int models = 0;
    while (engine->solve() == SolveResult::Sat && models <= 4) {
      ++models;
      Clause block;
      for (Var v = 0; v < engine->num_vars(); ++v) {
        const LBool value = engine->model()[static_cast<std::size_t>(v)];
        block.push_back(value == LBool::True ? Lit::negative(v)
                                             : Lit::positive(v));
      }
      if (!engine->add_clause(std::move(block))) break;
    }
    EXPECT_EQ(models, 3) << threads << " threads";
  }
}

// ---- 2-vs-1-thread agreement across the call layers ----

TEST(Portfolio, SatLoopAgreesAcrossThreadCounts) {
  // SatLoopOptions::solver.portfolio_threads is the single source of
  // truth for the SAT-loop's thread count (the old duplicated
  // SatLoopOptions::portfolio_threads knob is gone); 1 vs 2 threads must
  // agree on the optimum, under every search strategy.
  const Graph g = make_myciel_dimacs(3);
  for (const bool incremental : {false, true}) {
    for (const SearchStrategy strategy :
         {SearchStrategy::Linear, SearchStrategy::Binary,
          SearchStrategy::CoreGuided}) {
      SatLoopOptions one;
      one.incremental = incremental;
      one.search = strategy;
      SatLoopOptions two = one;
      two.solver.portfolio_threads = 2;
      const SatLoopResult r1 = solve_coloring_sat_loop(g, one);
      const SatLoopResult r2 = solve_coloring_sat_loop(g, two);
      ASSERT_EQ(r1.status, OptStatus::Optimal);
      ASSERT_EQ(r2.status, OptStatus::Optimal);
      EXPECT_EQ(r1.num_colors, 4);
      EXPECT_EQ(r2.num_colors, r1.num_colors)
          << (incremental ? "incremental " : "per-K rebuild ")
          << search_strategy_name(strategy);
      EXPECT_TRUE(g.is_proper_coloring(r2.coloring));
    }
  }
}

TEST(Portfolio, OptimizerAgreesAcrossThreadCounts) {
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_coloring(g, 7, SbpOptions::nu_sc());
  SolverConfig one = profile_config(SolverKind::PbsII);
  SolverConfig two = one;
  two.portfolio_threads = 2;

  const OptResult l1 = minimize_linear(enc.formula, one, Deadline{});
  const OptResult l2 = minimize_linear(enc.formula, two, Deadline{});
  ASSERT_EQ(l1.status, OptStatus::Optimal);
  ASSERT_EQ(l2.status, OptStatus::Optimal);
  EXPECT_EQ(l1.best_value, 5);
  EXPECT_EQ(l2.best_value, l1.best_value);

  const OptResult b2 = minimize_binary(enc.formula, two, Deadline{});
  ASSERT_EQ(b2.status, OptStatus::Optimal);
  EXPECT_EQ(b2.best_value, l1.best_value);

  const OptResult c2 = minimize(enc.formula, two, Deadline{},
                                SearchStrategy::CoreGuided);
  ASSERT_EQ(c2.status, OptStatus::Optimal);
  EXPECT_EQ(c2.best_value, l1.best_value);
}

// ---- restart blocking ----

TEST(RestartBlocking, AnswersAgreeWithAndWithoutBlocking) {
  for (const int k : {4, 5}) {
    const Formula f = queen5_formula(k);
    SolverConfig adaptive = profile_config(SolverKind::PbsII);
    adaptive.restart_scheme = RestartScheme::Adaptive;
    SolverConfig blocking = adaptive;
    blocking.restart_blocking = true;
    CdclSolver plain(f, adaptive);
    CdclSolver blocked(f, blocking);
    const SolveResult rp = plain.solve();
    const SolveResult rb = blocked.solve();
    ASSERT_NE(rp, SolveResult::Unknown);
    EXPECT_EQ(rb, rp) << "k=" << k;
    if (rb == SolveResult::Sat) EXPECT_TRUE(f.satisfied_by(blocked.model()));
  }
}

TEST(RestartBlocking, HairTriggerMarginSuppressesAdaptiveRestarts) {
  // margin 0 blocks every adaptive restart once the trail EMA is seeded,
  // so the EMA condition that fires on this instance (see
  // CdclRestarts.AdaptiveTriggersOnHighGlueBursts) must be converted
  // into blocked restarts instead.
  SolverConfig config;
  config.restart_scheme = RestartScheme::Adaptive;
  config.adaptive_min_conflicts = 8;
  config.restart_margin = 1.0;
  config.restart_blocking = true;
  config.block_margin = 0.0;
  CdclSolver solver(pigeonhole_formula(7, 6), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().blocked_restarts, 0);
  EXPECT_EQ(solver.stats().adaptive_restarts, 0);
}

TEST(RestartBlocking, OffByDefaultAndNeverCountedWhenOff) {
  SolverConfig config;
  EXPECT_FALSE(config.restart_blocking);
  config.restart_scheme = RestartScheme::Adaptive;
  CdclSolver solver(pigeonhole_formula(6, 5), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_EQ(solver.stats().blocked_restarts, 0);
}

// ---- conflict-interval reduce schedule ----

TEST(ReduceInterval, SchedulesReductionsAndAgreesWithDbSize) {
  const Formula f = pigeonhole_formula(7, 6);  // UNSAT: steady conflicts
  SolverConfig interval = profile_config(SolverKind::PbsII);
  interval.reduce_scheme = ReduceScheme::ConflictInterval;
  interval.reduce_interval_base = 50;
  interval.reduce_interval_inc = 25;
  CdclSolver a(f, interval);
  EXPECT_EQ(a.solve(), SolveResult::Unsat);
  // reduce_db() snapshots the tier census every time it runs; a nonzero
  // census on a >50-conflict search proves the schedule fired.
  ASSERT_GT(a.stats().conflicts, 50);
  EXPECT_GT(a.stats().tier_core + a.stats().tier_mid + a.stats().tier_local,
            0);

  CdclSolver b(f, profile_config(SolverKind::PbsII));
  EXPECT_EQ(b.solve(), SolveResult::Unsat);
}

TEST(ReduceInterval, BacksOffLinearlyUnderChurn) {
  // A tiny base with zero increment reduces roughly every 20 conflicts;
  // a huge increment must reduce far fewer times on the same workload.
  const Formula f = pigeonhole_formula(7, 6);
  SolverConfig eager = profile_config(SolverKind::PbsII);
  eager.reduce_scheme = ReduceScheme::ConflictInterval;
  eager.reduce_interval_base = 20;
  eager.reduce_interval_inc = 0;
  SolverConfig lazy = eager;
  lazy.reduce_interval_inc = 10000;
  CdclSolver e(f, eager);
  CdclSolver l(f, lazy);
  EXPECT_EQ(e.solve(), SolveResult::Unsat);
  EXPECT_EQ(l.solve(), SolveResult::Unsat);
  EXPECT_GE(e.stats().deleted_clauses, l.stats().deleted_clauses);
}

// ---- per-worker seed mixing ----

TEST(WorkerSeeds, MixingIsIdentityForMasterAndDistinctAcrossWorkers) {
  const std::uint64_t base = 0x1B52;  // the PBS II profile seed
  EXPECT_EQ(mix_worker_seed(base, 0), base);
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i <= 8; ++i) seeds.push_back(mix_worker_seed(base, i));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
    }
  }
  // Small consecutive base seeds must not alias each other's streams.
  EXPECT_NE(mix_worker_seed(1, 1), mix_worker_seed(2, 1));
  EXPECT_NE(mix_worker_seed(1, 2), mix_worker_seed(2, 1));
}

TEST(WorkerSeeds, DiversifiedConfigsReseedAndVary) {
  const SolverConfig base = profile_config(SolverKind::PbsII);
  EXPECT_EQ(diversify_config(base, 0).random_seed, base.random_seed);
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i <= 4; ++i) {
    const SolverConfig c = diversify_config(base, i);
    EXPECT_NE(c.random_seed, base.random_seed) << "worker " << i;
    seeds.push_back(c.random_seed);
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]);
    }
  }
  // The four personalities cover distinct restart/phase/reduce policies,
  // and PB analysis is a diversification axis: worker 1 always runs
  // native cutting planes, worker 2 always runs clause weakening, so both
  // modes race regardless of the base profile.
  EXPECT_TRUE(diversify_config(base, 1).restart_blocking);
  EXPECT_EQ(diversify_config(base, 1).pb_analysis, PbAnalysis::CuttingPlanes);
  EXPECT_EQ(diversify_config(base, 2).reduce_scheme,
            ReduceScheme::ConflictInterval);
  EXPECT_EQ(diversify_config(base, 2).pb_analysis, PbAnalysis::Weaken);
  EXPECT_FALSE(diversify_config(base, 3).phase_saving);
  EXPECT_TRUE(diversify_config(base, 3).default_phase);
}

// ---- import admission control and degenerate imports ----

TEST(ClauseImport, ImporterReappliesGlueAndSizeCaps) {
  // The exporter's thresholds are not trusted: a foreign clause whose
  // learn-time glue exceeds the importer's share_max_lbd, or whose length
  // exceeds share_max_size, must be dropped at import time and counted.
  Formula f;
  const Var first = f.new_vars(80);
  f.add_clause({Lit::positive(first), Lit::positive(first + 1)});

  ClauseExchange exchange(64);
  const std::vector<Lit> high_glue{Lit::positive(first),
                                   Lit::positive(first + 2),
                                   Lit::positive(first + 3)};
  ASSERT_TRUE(exchange.export_clause(/*worker=*/1, high_glue, /*lbd=*/9));
  const std::vector<Lit> acceptable{Lit::positive(first),
                                    Lit::positive(first + 4)};
  ASSERT_TRUE(exchange.export_clause(/*worker=*/1, acceptable, /*lbd=*/2));
  std::vector<Lit> oversized;
  for (int i = 0; i < 70; ++i) oversized.push_back(Lit::positive(first + i));
  ASSERT_TRUE(exchange.export_clause(/*worker=*/1, oversized, /*lbd=*/1));

  SolverConfig config;  // share_max_lbd = 2, share_max_size = 64
  CdclSolver solver(f, config);
  solver.set_sharing(&exchange, /*worker=*/0);
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.stats().imported_clauses, 1);
  EXPECT_EQ(solver.stats().rejected_imports, 2);
}

TEST(ClauseImport, AllFalseForeignClauseDerivesUnsat) {
  // A foreign clause that is already all-false under the importer's
  // level-0 assignment must set the solver UNSAT instead of being
  // silently attached as a falsified record.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_unit(Lit::negative(a));
  f.add_unit(Lit::negative(b));
  f.add_clause({Lit::positive(c), Lit::positive(a)});

  ClauseExchange exchange(16);
  const std::vector<Lit> foreign{Lit::positive(a), Lit::positive(b)};
  ASSERT_TRUE(exchange.export_clause(/*worker=*/1, foreign, /*lbd=*/2));

  CdclSolver solver(f);
  solver.set_sharing(&exchange, /*worker=*/0);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(ClauseImport, UnitConflictingForeignClauseDerivesUnsat) {
  // A foreign clause that simplifies to a unit whose propagation
  // conflicts at level 0 ends the search as UNSAT on import.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::negative(a), Lit::positive(b)});
  f.add_clause({Lit::negative(a), Lit::negative(b)});
  // Keep the instance satisfiable on its own (~a works).
  ClauseExchange exchange(16);
  const std::vector<Lit> foreign{Lit::positive(a)};
  ASSERT_TRUE(exchange.export_clause(/*worker=*/1, foreign, /*lbd=*/1));

  CdclSolver solver(f);
  solver.set_sharing(&exchange, /*worker=*/0);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

// ---- learned-PB sharing across workers ----

TEST(PbShare, ExchangeRoundTripFiltersOwnerAndBoundsCapacity) {
  ClauseExchange exchange(2);
  const std::vector<PbTerm> row{{2, Lit::positive(0)}, {1, Lit::positive(1)}};
  ASSERT_TRUE(exchange.export_pb(/*worker=*/1, row, /*degree=*/2, /*lbd=*/2));
  EXPECT_EQ(exchange.exported_pbs(), 1u);

  // The exporter never reimports its own row; another worker does, once.
  std::size_t cursor = 0;
  std::vector<SharedPb> got;
  exchange.import_pbs(/*worker=*/1, &cursor, &got);
  EXPECT_TRUE(got.empty());
  cursor = 0;
  exchange.import_pbs(/*worker=*/0, &cursor, &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].degree, 2);
  EXPECT_EQ(got[0].lbd, 2);
  EXPECT_EQ(got[0].terms, row);
  got.clear();
  exchange.import_pbs(/*worker=*/0, &cursor, &got);  // cursor advanced
  EXPECT_TRUE(got.empty());

  // The PB lane is bounded by the same capacity as the clause lane.
  ASSERT_TRUE(exchange.export_pb(2, row, 2, 2));
  EXPECT_FALSE(exchange.export_pb(2, row, 2, 2));
  EXPECT_GT(exchange.dropped(), 0u);
}

TEST(PbShare, ImporterReappliesGlueAndSizeCaps) {
  Formula f;
  const Var first = f.new_vars(80);
  f.add_clause({Lit::positive(first), Lit::positive(first + 1)});

  ClauseExchange exchange(64);
  const std::vector<PbTerm> good{{2, Lit::positive(first)},
                                 {1, Lit::positive(first + 1)}};
  ASSERT_TRUE(exchange.export_pb(/*worker=*/1, good, /*degree=*/2, /*lbd=*/2));
  ASSERT_TRUE(exchange.export_pb(/*worker=*/1, good, /*degree=*/2, /*lbd=*/9));
  std::vector<PbTerm> oversized;
  for (int i = 0; i < 70; ++i) {
    oversized.push_back({2, Lit::positive(first + i)});
  }
  ASSERT_TRUE(
      exchange.export_pb(/*worker=*/1, oversized, /*degree=*/3, /*lbd=*/1));

  SolverConfig config;  // share_max_lbd = 2, share_max_size = 64
  CdclSolver solver(f, config);
  solver.set_sharing(&exchange, /*worker=*/0);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.stats().imported_pbs, 1);
  EXPECT_EQ(solver.stats().rejected_imports, 2);
  // The accepted row (2a + b >= 2) forces a (b alone cannot reach 2).
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(first)], LBool::True);
}

TEST(PbShare, ForeignRowFalsifiedAtRootDerivesUnsat) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_unit(Lit::negative(a));
  f.add_unit(Lit::negative(b));

  ClauseExchange exchange(16);
  const std::vector<PbTerm> foreign{{2, Lit::positive(a)},
                                    {1, Lit::positive(b)}};
  ASSERT_TRUE(exchange.export_pb(/*worker=*/1, foreign, /*degree=*/2,
                                 /*lbd=*/1));
  CdclSolver solver(f);
  solver.set_sharing(&exchange, /*worker=*/0);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(PbShare, CuttingPlanesWorkerExportsLearnedRows) {
  // A solo cutting-planes solver on a PB pigeonhole publishes qualifying
  // learned rows at learn time (exports do not depend on a race).
  Formula f;
  std::vector<std::vector<Var>> in(7);
  for (int p = 0; p < 7; ++p) {
    for (int h = 0; h < 6; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < 7; ++p) {
    Clause c;
    for (int h = 0; h < 6; ++h) {
      c.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < 6; ++h) {
    std::vector<Lit> col;
    for (int p = 0; p < 7; ++p) {
      col.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_at_most(col, 1);
  }
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.pb_analysis = PbAnalysis::CuttingPlanes;
  config.share_max_lbd = 6;
  ClauseExchange exchange(1 << 12);
  CdclSolver exporter(f, config);
  exporter.set_sharing(&exchange, /*worker=*/0);
  ASSERT_EQ(exporter.solve(), SolveResult::Unsat);
  ASSERT_GT(exporter.stats().learned_pbs, 0);
  EXPECT_GT(exporter.stats().exported_pbs, 0);
  EXPECT_EQ(static_cast<std::size_t>(exporter.stats().exported_pbs),
            exchange.exported_pbs());

  // A second worker drains those rows soundly: same Unsat answer, rows
  // counted as PB imports.
  CdclSolver importer(f, config);
  importer.set_sharing(&exchange, /*worker=*/1);
  EXPECT_EQ(importer.solve(), SolveResult::Unsat);
  EXPECT_GT(importer.stats().imported_pbs, 0);
}

TEST(PbShare, PortfolioRaceWithPbTrafficStaysSound) {
  // End-to-end: PB-heavy queen encodings raced at 4 threads (worker 1
  // always runs cutting planes, so the PB lane sees traffic when rows
  // qualify) never flip an answer, across interleavings.
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 4;
  config.share_max_lbd = 4;
  for (int round = 0; round < 3; ++round) {
    PortfolioSolver unsat(queen5_formula(4), config);
    EXPECT_EQ(unsat.solve(), SolveResult::Unsat) << "round " << round;
    PortfolioSolver sat(queen5_formula(5), config);
    EXPECT_EQ(sat.solve(), SolveResult::Sat) << "round " << round;
  }
}

TEST(ClauseImport, PortfolioRaceSurvivesDegenerateImports) {
  // End-to-end regression: racing workers with sharing enabled on
  // instances whose imports can simplify to units (myciel3 at its
  // chromatic boundary) must never flip an answer or trip the
  // disagreement check, across several interleavings.
  const Graph myciel = make_myciel_dimacs(3);
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 4;
  config.share_max_lbd = 4;  // admit enough traffic to exercise the path
  for (int round = 0; round < 3; ++round) {
    PortfolioSolver unsat(
        encode_k_coloring(myciel, 3, SbpOptions::nu_sc()).formula, config);
    EXPECT_EQ(unsat.solve(), SolveResult::Unsat) << "round " << round;
    PortfolioSolver sat(
        encode_k_coloring(myciel, 4, SbpOptions::nu_sc()).formula, config);
    EXPECT_EQ(sat.solve(), SolveResult::Sat) << "round " << round;
  }
}

// ---- fault-isolated workers ----

/// queen5 coloring CNF without SBPs: dozens of conflicts for the master
/// (34 UNSAT at k=4, 28 SAT at k=5), and every diversified personality is
/// guaranteed at least one conflict — so a throw-after-1-conflict fault
/// spec fires deterministically on whichever worker carries it. (The
/// SBP-laden encodings are useless here: nu+sc collapses these instances
/// to ~3 conflicts, below any useful fault threshold.)
Formula queen5_plain_formula(int k) {
  const Graph g = make_queen_graph(5, 5);
  return encode_k_coloring(g, k, SbpOptions::none()).formula;
}

TEST(PortfolioFaults, FaultyWorkerStillAnswers) {
  // Worker 1 is armed to die at its first conflict; the survivors must
  // still deliver the correct definitive answer, at every thread count
  // and in both scheduling modes. In deterministic mode every worker runs
  // to completion, so the fault ALWAYS fires (exactly one death); in race
  // mode a fast winner may early-exit worker 1 before its first conflict,
  // so the death toll is 0 or 1 — never more, and never a wrong answer.
  for (const int threads : {1, 2, 4}) {
    for (const bool deterministic : {false, true}) {
      SolverConfig config = profile_config(SolverKind::PbsII);
      config.portfolio_threads = threads;
      config.portfolio_deterministic = deterministic;
      config.fault_injection.worker = 1;
      config.fault_injection.throw_after_conflicts = 1;
      // threads == 1 has no worker 1: the spec is inert there.
      const int min_faults = (threads > 1 && deterministic) ? 1 : 0;
      const int max_faults = threads > 1 ? 1 : 0;

      PortfolioSolver sat(queen5_plain_formula(5), config);
      EXPECT_EQ(sat.solve(), SolveResult::Sat)
          << threads << " threads, deterministic=" << deterministic;
      EXPECT_GE(sat.last_fault_count(), min_faults);
      EXPECT_LE(sat.last_fault_count(), max_faults);

      PortfolioSolver unsat(queen5_plain_formula(4), config);
      EXPECT_EQ(unsat.solve(), SolveResult::Unsat)
          << threads << " threads, deterministic=" << deterministic;
      EXPECT_GE(unsat.last_fault_count(), min_faults);
      EXPECT_LE(unsat.last_fault_count(), max_faults);
    }
  }
}

TEST(PortfolioFaults, MasterFaultRecoversAndNextSolveIsHealthy) {
  // Worker 0 (the master itself) dies; a surviving clone answers, the
  // master is rebuilt from it, and — fault specs being one-shot — a
  // second solve on the same engine runs fault-free.
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 2;
  config.fault_injection.worker = 0;
  config.fault_injection.throw_after_conflicts = 1;

  PortfolioSolver solver(queen5_plain_formula(4), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_EQ(solver.last_fault_count(), 1);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_EQ(solver.last_fault_count(), 0);
}

TEST(PortfolioFaults, AllWorkersDeadRethrows) {
  // worker < 0 arms the fault on every worker: with nobody left to
  // answer, the portfolio must surface the failure, not fabricate a
  // result.
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 2;
  config.fault_injection.worker = -1;
  config.fault_injection.throw_after_conflicts = 1;

  PortfolioSolver solver(queen5_plain_formula(4), config);
  EXPECT_THROW(solver.solve(), std::runtime_error);
}

TEST(PortfolioFaults, PoisonedImportIsolatedToItsWorker) {
  // A worker whose import path throws (poisoned exchange payload) dies at
  // its first drain; the exchange keeps serving the survivors and the
  // race still concludes correctly.
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 2;
  config.fault_injection.worker = 1;
  config.fault_injection.poison_import = true;

  PortfolioSolver sat(queen5_plain_formula(5), config);
  EXPECT_EQ(sat.solve(), SolveResult::Sat);
  EXPECT_EQ(sat.last_fault_count(), 1);

  PortfolioSolver unsat(queen5_plain_formula(4), config);
  EXPECT_EQ(unsat.solve(), SolveResult::Unsat);
  EXPECT_EQ(unsat.last_fault_count(), 1);
}

TEST(PortfolioFaults, SingleThreadFaultPropagates) {
  // With one worker there is nobody to hide behind: the fault reaches
  // the caller (worker 0 == the sequential master).
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 1;
  config.fault_injection.worker = 0;
  config.fault_injection.throw_after_conflicts = 1;

  PortfolioSolver solver(queen5_plain_formula(4), config);
  EXPECT_THROW(solver.solve(), std::runtime_error);
}

TEST(PortfolioFaults, PresetInterruptReturnsUnknownWithTrip) {
  // An interrupt raised before the race starts preempts every worker:
  // the portfolio reports Unknown and surfaces the Interrupt trip.
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 2;
  // Hard enough that the first poll-cadence check fires long before any
  // worker could finish, small enough that the re-armed solve is quick.
  const Formula f = pigeonhole_formula(8, 7);
  PortfolioSolver solver(f, config);
  SolveBudget budget;
  budget.interrupt();
  EXPECT_EQ(solver.solve(budget), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Interrupt);
  // Re-armed, the same engine solves to completion.
  budget.clear_interrupt();
  EXPECT_EQ(solver.solve(budget), SolveResult::Unsat);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::None);
}

}  // namespace
}  // namespace symcolor
