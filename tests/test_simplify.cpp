// Tests for the pre-solve simplifier: root propagation, pure literals,
// subsumption, and model-set preservation.

#include <gtest/gtest.h>

#include "cnf/simplify.h"
#include "coloring/encoder.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "sat/cdcl.h"
#include "util/rng.h"

namespace symcolor {
namespace {

bool brute_force_sat(const Formula& f) {
  const int n = f.num_vars();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<LBool> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    if (f.satisfied_by(vals)) return true;
  }
  return false;
}

TEST(Simplify, UnitChainCollapses) {
  Formula f;
  const Var first = f.new_vars(5);
  f.add_unit(Lit::positive(first));
  for (int i = 0; i + 1 < 5; ++i) {
    f.add_implication(Lit::positive(first + i), Lit::positive(first + i + 1));
  }
  SimplifyStats stats;
  const Formula out = simplify(f, &stats);
  EXPECT_EQ(stats.fixed_variables, 5);
  // All five variables survive as units; nothing else remains.
  EXPECT_EQ(out.num_clauses(), 5);
  for (const Clause& c : out.clauses()) EXPECT_EQ(c.size(), 1u);
}

TEST(Simplify, RootConflictDetected) {
  Formula f;
  const Var v = f.new_var();
  f.add_unit(Lit::positive(v));
  f.add_unit(Lit::negative(v));
  SimplifyStats stats;
  const Formula out = simplify(f, &stats);
  EXPECT_TRUE(stats.unsatisfiable);
  EXPECT_TRUE(out.trivially_unsat());
}

TEST(Simplify, PureLiteralFixed) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::positive(a), Lit::negative(b)});
  SimplifyStats stats;
  const Formula out = simplify(f, &stats);
  // `a` appears only positively: fixed true, which satisfies everything.
  EXPECT_EQ(stats.pure_literals, 1);
  CdclSolver solver(out);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(a)], LBool::True);
}

TEST(Simplify, ObjectiveVariablesNeverPureFixed) {
  Formula f;
  const Var a = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(f.new_var())});
  Objective obj;
  obj.terms = {{1, Lit::positive(a)}};
  f.set_objective(obj);
  SimplifyStats stats;
  const Formula out = simplify(f, &stats);
  // Fixing `a` true would be pure but would cost objective value.
  const OptResult r = minimize_linear(out, {}, {});
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 0);
}

TEST(Simplify, SubsumedClauseRemoved) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::positive(a), Lit::positive(b), Lit::positive(c)});
  SimplifyStats stats;
  SimplifyOptions options;
  options.pure_literals = false;  // keep both clauses alive for the check
  const Formula out = simplify(f, &stats, options);
  EXPECT_EQ(out.num_clauses(), 1);
  EXPECT_EQ(stats.removed_clauses, 1);
}

TEST(Simplify, PbForcedLiterals) {
  // 3a + b + c >= 4 forces a at the root.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_pb(PbConstraint::at_least(
      {{3, Lit::positive(a)}, {1, Lit::positive(b)}, {1, Lit::positive(c)}}, 4));
  SimplifyStats stats;
  const Formula out = simplify(f, &stats);
  EXPECT_GE(stats.fixed_variables, 1);
  CdclSolver solver(out);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(a)], LBool::True);
}

TEST(Simplify, PbReducedToClauseMigrates) {
  // a + b + c >= 2 with a fixed false becomes clause (b | c).
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_unit(Lit::negative(a));
  f.add_at_least({Lit::positive(a), Lit::positive(b), Lit::positive(c)}, 2);
  SimplifyStats stats;
  SimplifyOptions options;
  options.pure_literals = false;
  const Formula out = simplify(f, &stats, options);
  EXPECT_EQ(out.num_pb(), 0);
  EXPECT_GE(stats.removed_pb, 1);
}

TEST(Simplify, PreservesSatisfiabilityRandom) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const int vars = 8;
    Formula f;
    f.new_vars(vars);
    for (int c = 0; c < 18; ++c) {
      Clause clause;
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int i = 0; i < len; ++i) {
        clause.push_back(
            Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
      }
      f.add_clause(std::move(clause));
    }
    const Formula out = simplify(f);
    EXPECT_EQ(brute_force_sat(f), brute_force_sat(out)) << "trial " << trial;
  }
}

TEST(Simplify, PreservesColoringOptimum) {
  const Graph g = make_myciel_dimacs(3);
  const ColoringEncoding enc = encode_coloring(g, 6, SbpOptions::nu_sc());
  SimplifyStats stats;
  const Formula out = simplify(enc.formula, &stats);
  const OptResult plain = minimize_linear(enc.formula, {}, {});
  const OptResult simplified = minimize_linear(out, {}, {});
  ASSERT_EQ(plain.status, OptStatus::Optimal);
  ASSERT_EQ(simplified.status, OptStatus::Optimal);
  EXPECT_EQ(plain.best_value, simplified.best_value);
  // SC's unit pins must have propagated away some edge clauses.
  EXPECT_GT(stats.fixed_variables + stats.removed_clauses, 0);
}

TEST(Simplify, IdempotentOnFixpoint) {
  const Graph g = make_myciel_dimacs(3);
  const ColoringEncoding enc = encode_coloring(g, 4, SbpOptions::sc_only());
  const Formula once = simplify(enc.formula);
  SimplifyStats stats;
  const Formula twice = simplify(once, &stats);
  EXPECT_EQ(once.num_clauses(), twice.num_clauses());
  EXPECT_EQ(once.num_pb(), twice.num_pb());
}

TEST(Simplify, WidthCapSkipsLongClauses) {
  Formula f;
  f.new_vars(16);
  Clause longer;
  Clause shorter;
  for (int i = 0; i < 15; ++i) longer.push_back(Lit::positive(i));
  for (int i = 0; i < 14; ++i) shorter.push_back(Lit::positive(i));
  f.add_clause(longer);
  f.add_clause(shorter);
  SimplifyOptions options;
  options.pure_literals = false;
  options.max_subsumption_width = 4;  // shorter clause exceeds the cap
  SimplifyStats stats;
  const Formula out = simplify(f, &stats, options);
  EXPECT_EQ(out.num_clauses(), 2);  // no subsumption attempted
}

}  // namespace
}  // namespace symcolor
