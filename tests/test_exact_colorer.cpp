// Integration tests for the full pipeline: encode -> (SBPs) -> solve ->
// decode, across solver personalities and SBP configurations, cross-
// checked against the problem-specific DSATUR branch and bound.

#include <gtest/gtest.h>

#include <cmath>

#include "coloring/dsatur_bnb.h"
#include "coloring/exact_colorer.h"
#include "graph/generators.h"

namespace symcolor {
namespace {

TEST(ExactColorer, Myciel3ChromaticNumber) {
  ColoringOptions options;
  options.max_colors = 8;
  const ColoringOutcome r = solve_coloring(make_myciel_dimacs(3), options);
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.num_colors, 4);
  EXPECT_FALSE(r.coloring.empty());
}

TEST(ExactColorer, Queen5ChromaticNumber) {
  ColoringOptions options;
  options.max_colors = 7;
  options.sbps = SbpOptions::nu_sc();
  const ColoringOutcome r = solve_coloring(make_queen_graph(5, 5), options);
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.num_colors, 5);
}

TEST(ExactColorer, InfeasibleWhenBoundTooTight) {
  ColoringOptions options;
  options.max_colors = 3;
  const ColoringOutcome r = solve_coloring(make_myciel_dimacs(3), options);
  EXPECT_EQ(r.status, OptStatus::Infeasible);
  EXPECT_TRUE(r.coloring.empty());
}

TEST(ExactColorer, DecisionMode) {
  ColoringOptions options;
  options.max_colors = 4;
  EXPECT_EQ(solve_k_coloring(make_myciel_dimacs(3), options).status,
            OptStatus::Optimal);
  options.max_colors = 3;
  EXPECT_EQ(solve_k_coloring(make_myciel_dimacs(3), options).status,
            OptStatus::Infeasible);
}

TEST(ExactColorer, InstanceDependentSbpsRecordStats) {
  ColoringOptions options;
  options.max_colors = 6;
  options.instance_dependent_sbps = true;
  const ColoringOutcome r = solve_coloring(make_myciel_dimacs(3), options);
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.num_colors, 4);
  ASSERT_TRUE(r.symmetry.has_value());
  // Color permutations alone give 6! symmetries in the K=6 encoding.
  EXPECT_GE(r.symmetry->log10_order, std::log10(720.0) - 1e-6);
  EXPECT_GT(r.inst_dep_sbp_clauses, 0);
}

TEST(ExactColorer, TimeBudgetHonored) {
  ColoringOptions options;
  options.max_colors = 12;
  options.time_budget_seconds = 0.01;
  const ColoringOutcome r =
      solve_coloring(make_random_gnm(70, 1200, 5), options);
  // Must return quickly with a non-wrong status.
  EXPECT_LT(r.total_seconds, 5.0);
}

TEST(ExactColorer, AllSearchStrategiesAgree) {
  ColoringOptions linear;
  linear.max_colors = 7;
  // NU+SC keeps the low-bound UNSAT probes cheap; the no-SBP strategy
  // sweep lives in test_property's StrategyAgreement.
  linear.sbps = SbpOptions::nu_sc();
  ColoringOptions binary = linear;
  binary.search = SearchStrategy::Binary;
  ColoringOptions core = linear;
  core.search = SearchStrategy::CoreGuided;
  const Graph g = make_myciel_dimacs(4);
  const ColoringOutcome a = solve_coloring(g, linear);
  const ColoringOutcome b = solve_coloring(g, binary);
  const ColoringOutcome c = solve_coloring(g, core);
  ASSERT_EQ(a.status, OptStatus::Optimal);
  ASSERT_EQ(b.status, OptStatus::Optimal);
  ASSERT_EQ(c.status, OptStatus::Optimal);
  EXPECT_EQ(a.num_colors, b.num_colors);
  EXPECT_EQ(a.num_colors, c.num_colors);
}

struct PipelineCase {
  int sbp_row;
  bool inst_dep;
  int solver_index;
};

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<int, bool, int>> {};

TEST_P(PipelineSweep, AgreesWithDsaturBnbOnSmallGraphs) {
  const auto [sbp_row, inst_dep, solver_index] = GetParam();
  const SolverKind solvers[] = {SolverKind::PbsII, SolverKind::Galena,
                                SolverKind::Pueblo, SolverKind::GenericIlp};
  ColoringOptions options;
  options.max_colors = 5;
  options.sbps = paper_sbp_rows()[static_cast<std::size_t>(sbp_row)];
  options.instance_dependent_sbps = inst_dep;
  options.solver = solvers[solver_index];

  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const Graph g = make_random_gnm(12, 28, seed);
    const int expected = dsatur_branch_and_bound(g).num_colors;
    const ColoringOutcome r = solve_coloring(g, options);
    if (expected > options.max_colors) {
      EXPECT_EQ(r.status, OptStatus::Infeasible);
      continue;
    }
    ASSERT_EQ(r.status, OptStatus::Optimal)
        << "sbp=" << options.sbps.label() << " instdep=" << inst_dep
        << " solver=" << solver_name(options.solver) << " seed=" << seed;
    EXPECT_EQ(r.num_colors, expected);
    EXPECT_TRUE(g.is_proper_coloring(r.coloring));
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PipelineSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Bool(),
                                            ::testing::Range(0, 4)));

TEST(ExactColorer, SuiteSmallInstancesMatchPinnedChromaticNumbers) {
  ColoringOptions options;
  options.max_colors = 8;
  options.sbps = SbpOptions::nu_sc();
  options.instance_dependent_sbps = true;
  for (const Instance& inst : dimacs_suite()) {
    if (inst.graph.num_vertices() > 50) continue;  // keep the test fast
    if (inst.chromatic_number < 0 ||
        inst.chromatic_number > options.max_colors) {
      continue;
    }
    const ColoringOutcome r = solve_coloring(inst.graph, options);
    ASSERT_EQ(r.status, OptStatus::Optimal) << inst.name;
    EXPECT_EQ(r.num_colors, inst.chromatic_number) << inst.name;
  }
}

}  // namespace
}  // namespace symcolor
