// Incremental hot-path tests: chronological backtracking and
// assumption-trail reuse. Covers on-vs-off answer agreement across the
// engine stack (plain / portfolio / cube-and-conquer at 1, 2 and 4
// threads) on queen/myciel/random instances, repeated assumption-ladder
// solves on one persistent engine, last_core() soundness when the
// refuting solve reused a retained trail prefix, clone-after-reused-trail
// equivalence, the inprocess-Full substitution interaction (the public
// inprocess() hook must lazily discard the retained prefix), and
// add_clause()/reconfigure() after a retained trail.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cnf/formula.h"
#include "coloring/encoder.h"
#include "graph/generators.h"
#include "pb/solver_profiles.h"
#include "sat/cdcl.h"
#include "sat/portfolio.h"

namespace symcolor {
namespace {

Formula queen5_plain(int k) {
  return encode_k_coloring(make_queen_graph(5, 5), k, SbpOptions::none())
      .formula;
}

Formula myciel3_plain(int k) {
  return encode_k_coloring(make_myciel_dimacs(3), k, SbpOptions::none())
      .formula;
}

Formula random_plain(int k, std::uint64_t seed) {
  return encode_k_coloring(make_random_gnm(12, 30, seed), k,
                           SbpOptions::none())
      .formula;
}

/// Incremental features fully on, with the chrono threshold cranked down
/// to 1 so the tiny test instances actually take chronological backtracks
/// (the production default of 100 would never fire at these depths).
SolverConfig inc_config(bool on, int threads = 1, int cube_depth = 0) {
  SolverConfig c = profile_config(SolverKind::PbsII);
  c.portfolio_threads = threads;
  c.cube_depth = cube_depth;
  c.chrono_threshold = on ? 1 : 0;
  c.reuse_trail = on;
  return c;
}

// ---- on-vs-off agreement across the engine stack ----

struct AgreementCase {
  const char* name;
  Formula formula;
  SolveResult expected;
};

std::vector<AgreementCase> agreement_suite() {
  std::vector<AgreementCase> suite;
  suite.push_back({"queen5_k4", queen5_plain(4), SolveResult::Unsat});
  suite.push_back({"queen5_k5", queen5_plain(5), SolveResult::Sat});
  suite.push_back({"myciel3_k3", myciel3_plain(3), SolveResult::Unsat});
  suite.push_back({"myciel3_k4", myciel3_plain(4), SolveResult::Sat});
  suite.push_back({"random_k3", random_plain(3, 7), SolveResult::Unknown});
  return suite;
}

void check_agreement(int threads, int cube_depth) {
  for (AgreementCase& tc : agreement_suite()) {
    auto off =
        make_solver_engine(tc.formula, inc_config(false, threads, cube_depth));
    auto on =
        make_solver_engine(tc.formula, inc_config(true, threads, cube_depth));
    const SolveResult r_off = off->solve();
    const SolveResult r_on = on->solve();
    EXPECT_EQ(r_off, r_on) << tc.name << " threads=" << threads
                           << " cube_depth=" << cube_depth;
    if (tc.expected != SolveResult::Unknown) {
      EXPECT_EQ(r_on, tc.expected) << tc.name;
    }
    if (r_on == SolveResult::Sat) {
      EXPECT_TRUE(tc.formula.satisfied_by(on->model()))
          << tc.name << ": model with incremental features on is improper";
    }
  }
}

TEST(IncrementalAgreement, PlainOneThread) { check_agreement(1, 0); }
TEST(IncrementalAgreement, PortfolioTwoThreads) { check_agreement(2, 0); }
TEST(IncrementalAgreement, PortfolioFourThreads) { check_agreement(4, 0); }
TEST(IncrementalAgreement, CubeDepthTwoTwoThreads) { check_agreement(2, 2); }
TEST(IncrementalAgreement, CubeDepthTwoFourThreads) { check_agreement(4, 2); }

// The features must actually FIRE on the instances the matrix runs, or
// the agreement above proves nothing about the new code paths.
TEST(IncrementalAgreement, FeaturesActuallyFireOnQueen) {
  const ColoringEncoding enc =
      encode_k_coloring(make_queen_graph(5, 5), 7, SbpOptions::none());
  CdclSolver solver(enc.formula, inc_config(true));
  std::vector<Lit> assume;
  for (int k = 6; k >= 4; --k) {  // chi(queen5) = 5: SAT, SAT, UNSAT ladder
    assume.push_back(Lit::negative(enc.y(k)));
    (void)solver.solve({}, assume);
  }
  EXPECT_GT(solver.stats().chrono_backtracks, 0);
  EXPECT_GT(solver.stats().reused_trail_literals, 0);
  EXPECT_GT(solver.stats().saved_propagations, 0);
}

// ---- persistent-engine assumption ladders ----

// The optimizer-style ladder on one persistent engine must give the same
// verdict at every rung as a fresh solver with the features off.
TEST(TrailReuse, LadderMatchesFreshSolver) {
  const ColoringEncoding enc =
      encode_k_coloring(make_queen_graph(5, 5), 7, SbpOptions::none());
  CdclSolver persistent(enc.formula, inc_config(true));
  std::vector<Lit> assume;
  for (int k = 6; k >= 4; --k) {
    assume.push_back(Lit::negative(enc.y(k)));
    const SolveResult incremental = persistent.solve({}, assume);
    CdclSolver fresh(enc.formula, inc_config(false));
    EXPECT_EQ(incremental, fresh.solve({}, assume)) << "rung k=" << k;
    if (incremental == SolveResult::Sat) {
      EXPECT_TRUE(enc.formula.satisfied_by(persistent.model()));
    }
  }
}

// Re-solving the SAME assumptions must reuse the retained prefix and
// still answer correctly; switching to a DIFFERENT prefix must not leak
// stale implications from the previous one.
TEST(TrailReuse, RepeatAndSwitchPrefixes) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_clause({Lit::negative(a), Lit::positive(b)});   // a -> b
  f.add_clause({Lit::negative(c), Lit::negative(b)});   // c -> ~b
  CdclSolver solver(f, inc_config(true));
  const std::vector<Lit> assume_a = {Lit::positive(a)};
  ASSERT_EQ(solver.solve({}, assume_a), SolveResult::Sat);
  EXPECT_EQ(solver.model()[b], LBool::True);
  ASSERT_EQ(solver.solve({}, assume_a), SolveResult::Sat);
  // Different first assumption: nothing of the [a] prefix may survive.
  const std::vector<Lit> assume_c = {Lit::positive(c)};
  ASSERT_EQ(solver.solve({}, assume_c), SolveResult::Sat);
  EXPECT_EQ(solver.model()[b], LBool::False);
  // And the contradictory pair is still detected.
  const std::vector<Lit> both = {Lit::positive(c), Lit::positive(a)};
  EXPECT_EQ(solver.solve({}, both), SolveResult::Unsat);
}

// ---- last_core() soundness under reused prefixes ----

TEST(TrailReuse, CoreSoundAfterReusedPrefix) {
  const ColoringEncoding enc =
      encode_k_coloring(make_queen_graph(5, 5), 7, SbpOptions::none());
  CdclSolver solver(enc.formula, inc_config(true));
  // SAT rungs first so the UNSAT rung enters with a reusable prefix.
  std::vector<Lit> assume = {Lit::negative(enc.y(6))};
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  assume.push_back(Lit::negative(enc.y(5)));
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  assume.push_back(Lit::negative(enc.y(4)));
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Unsat);
  ASSERT_FALSE(solver.last_core().empty());
  // Every core literal names one of the caller's assumptions...
  std::vector<Lit> core(solver.last_core().begin(), solver.last_core().end());
  for (const Lit l : core) {
    EXPECT_TRUE(std::find(assume.begin(), assume.end(), l) != assume.end())
        << "core literal outside the caller's assumption vector";
  }
  // ...and the core alone is genuinely contradictory with the formula:
  // asserting it as units on a FRESH solver must be Unsat.
  CdclSolver check(enc.formula, inc_config(false));
  EXPECT_EQ(check.solve({}, core), SolveResult::Unsat);
}

// ---- clone-after-reused-trail equivalence ----

TEST(TrailReuse, CloneAfterRetainedTrailIsEquivalent) {
  const ColoringEncoding enc =
      encode_k_coloring(make_queen_graph(5, 5), 7, SbpOptions::none());
  CdclSolver solver(enc.formula, inc_config(true));
  const std::vector<Lit> assume = {Lit::negative(enc.y(6)),
                                   Lit::negative(enc.y(5))};
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  // The trail prefix for `assume` is retained; the clone must come out
  // quiescent and answer every query like a fresh engine would.
  std::unique_ptr<SolverEngine> clone = solver.clone();
  ASSERT_EQ(clone->solve(), SolveResult::Sat);
  EXPECT_TRUE(enc.formula.satisfied_by(clone->model()));
  const std::vector<Lit> unsat_ladder = {Lit::negative(enc.y(6)),
                                         Lit::negative(enc.y(5)),
                                         Lit::negative(enc.y(4))};
  EXPECT_EQ(clone->solve({}, unsat_ladder), SolveResult::Unsat);
  // The original keeps working after the clone, reuse intact.
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  EXPECT_TRUE(enc.formula.satisfied_by(solver.model()));
}

// ---- inprocess-Full interaction: substitution forces the lazy backtrack ----

TEST(TrailReuse, InprocessFullAfterRetainedTrail) {
  // x0 <-> x1 chained equivalences plus a free side: after a retained
  // assumption trail, the public inprocess() hook must lazily backtrack
  // to the root before substituting (it asserts level 0 internally), and
  // later solves must not reuse the stale pre-substitution prefix.
  Formula f;
  const Var x0 = f.new_var();
  const Var x1 = f.new_var();
  const Var x2 = f.new_var();
  const Var x3 = f.new_var();
  f.add_clause({Lit::negative(x0), Lit::positive(x1)});
  f.add_clause({Lit::negative(x1), Lit::positive(x0)});
  f.add_clause({Lit::positive(x2), Lit::positive(x3)});
  SolverConfig config = inc_config(true);
  config.inprocess = InprocessMode::Full;
  CdclSolver solver(f, config);
  const std::vector<Lit> assume = {Lit::positive(x0), Lit::positive(x2)};
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  solver.inprocess();
  EXPECT_GE(solver.replaced_vars(), 1);
  // Same assumptions again: the retained prefix was discarded, so this
  // re-propagates through the substituted alphabet and must still agree.
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
  EXPECT_EQ(solver.model()[x1], LBool::True);
  // And an assumption naming the substituted-away variable still works.
  const std::vector<Lit> through_sub = {Lit::negative(x1)};
  ASSERT_EQ(solver.solve({}, through_sub), SolveResult::Sat);
  EXPECT_EQ(solver.model()[x0], LBool::False);
}

// ---- mutation after a retained trail ----

TEST(TrailReuse, AddClauseAfterRetainedTrail) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  CdclSolver solver(f, inc_config(true));
  const std::vector<Lit> assume = {Lit::positive(a)};
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  // add_clause() must lazily discard the retained [a] prefix; the new
  // clause then makes that same assumption infeasible.
  ASSERT_TRUE(solver.add_clause({Lit::negative(a)}));
  EXPECT_EQ(solver.solve({}, assume), SolveResult::Unsat);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model()[a], LBool::False);
  EXPECT_EQ(solver.model()[b], LBool::True);
}

TEST(TrailReuse, ReconfigureAfterRetainedTrail) {
  const ColoringEncoding enc =
      encode_k_coloring(make_queen_graph(5, 5), 7, SbpOptions::none());
  // Retain a trail, then flip the features off via reconfigure(): the
  // prefix must be discarded and subsequent solves run the classic path.
  CdclSolver ladder(enc.formula, inc_config(true));
  const std::vector<Lit> assume = {Lit::negative(enc.y(6))};
  ASSERT_EQ(ladder.solve({}, assume), SolveResult::Sat);
  ladder.reconfigure(inc_config(false));
  ASSERT_EQ(ladder.solve({}, assume), SolveResult::Sat);
  EXPECT_TRUE(enc.formula.satisfied_by(ladder.model()));
}

}  // namespace
}  // namespace symcolor
