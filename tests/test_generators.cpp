// Tests for the benchmark generators: exact families are verified against
// known mathematics (queen graphs, Mycielski), synthetic families against
// their structural guarantees (size, planted clique, k-partiteness).

#include <gtest/gtest.h>

#include "coloring/heuristics.h"
#include "graph/clique.h"
#include "graph/generators.h"

namespace symcolor {
namespace {

TEST(QueenGraph, FiveByFiveMatchesDimacs) {
  // DIMACS queen5_5 lists 320 directed edge records = 160 undirected
  // edges (paper Table 1 copies the doubled file counts).
  const Graph g = make_queen_graph(5, 5);
  EXPECT_EQ(g.num_vertices(), 25);
  EXPECT_EQ(g.num_edges(), 160);
}

TEST(QueenGraph, SixBySixMatchesDimacs) {
  const Graph g = make_queen_graph(6, 6);
  EXPECT_EQ(g.num_vertices(), 36);
  EXPECT_EQ(g.num_edges(), 290);
}

TEST(QueenGraph, SevenBySevenMatchesDimacs) {
  const Graph g = make_queen_graph(7, 7);
  EXPECT_EQ(g.num_vertices(), 49);
  EXPECT_EQ(g.num_edges(), 476);
}

TEST(QueenGraph, EightByTwelveMatchesDimacs) {
  const Graph g = make_queen_graph(8, 12);
  EXPECT_EQ(g.num_vertices(), 96);
  EXPECT_EQ(g.num_edges(), 1368);
}

TEST(QueenGraph, RowsAreCliques) {
  const Graph g = make_queen_graph(4, 4);
  for (int r = 0; r < 4; ++r) {
    std::vector<int> row;
    for (int c = 0; c < 4; ++c) row.push_back(r * 4 + c);
    EXPECT_TRUE(is_clique(g, row));
  }
}

TEST(QueenGraph, DiagonalAttacks) {
  const Graph g = make_queen_graph(3, 3);
  EXPECT_TRUE(g.has_edge(0, 4));   // (0,0)-(1,1)
  EXPECT_TRUE(g.has_edge(0, 8));   // (0,0)-(2,2)
  EXPECT_TRUE(g.has_edge(2, 4));   // (0,2)-(1,1)
  EXPECT_FALSE(g.has_edge(0, 5));  // (0,0)-(1,2): knight move, no attack
}

TEST(QueenGraph, RejectsEmptyBoard) {
  EXPECT_THROW(make_queen_graph(0, 3), std::invalid_argument);
}

TEST(Mycielski, SizesFollowRecurrence) {
  // |M_{k+1}| = 2|M_k| + 1 starting from |M_2| = 2.
  EXPECT_EQ(make_mycielski(2).num_vertices(), 2);
  EXPECT_EQ(make_mycielski(3).num_vertices(), 5);
  EXPECT_EQ(make_mycielski(4).num_vertices(), 11);
  EXPECT_EQ(make_mycielski(5).num_vertices(), 23);
  EXPECT_EQ(make_mycielski(6).num_vertices(), 47);
}

TEST(Mycielski, DimacsNamesMatchTable1) {
  const Graph m3 = make_myciel_dimacs(3);
  EXPECT_EQ(m3.num_vertices(), 11);
  EXPECT_EQ(m3.num_edges(), 20);
  const Graph m4 = make_myciel_dimacs(4);
  EXPECT_EQ(m4.num_vertices(), 23);
  EXPECT_EQ(m4.num_edges(), 71);
  const Graph m5 = make_myciel_dimacs(5);
  EXPECT_EQ(m5.num_vertices(), 47);
  EXPECT_EQ(m5.num_edges(), 236);
}

TEST(Mycielski, TriangleFree) {
  const Graph g = make_mycielski(5);
  // No triangle: for every edge, neighbourhoods are disjoint.
  for (const Edge& e : g.edges()) {
    for (const int w : g.neighbors(e.u)) {
      EXPECT_FALSE(g.has_edge(w, e.v) && w != e.v)
          << "triangle " << e.u << " " << e.v << " " << w;
    }
  }
}

TEST(Mycielski, M3IsC5) {
  const Graph g = make_mycielski(3);
  EXPECT_EQ(g.num_edges(), 5);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(RandomGnm, ExactEdgeCount) {
  const Graph g = make_random_gnm(50, 200, 123);
  EXPECT_EQ(g.num_vertices(), 50);
  EXPECT_EQ(g.num_edges(), 200);
}

TEST(RandomGnm, Deterministic) {
  const Graph a = make_random_gnm(30, 100, 7);
  const Graph b = make_random_gnm(30, 100, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[static_cast<std::size_t>(i)],
              b.edges()[static_cast<std::size_t>(i)]);
  }
}

TEST(RandomGnm, SeedsDiffer) {
  const Graph a = make_random_gnm(30, 100, 7);
  const Graph b = make_random_gnm(30, 100, 8);
  bool any_difference = false;
  for (int i = 0; i < a.num_edges(); ++i) {
    if (a.edges()[static_cast<std::size_t>(i)] !=
        b.edges()[static_cast<std::size_t>(i)]) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomGnm, RejectsImpossibleEdgeCount) {
  EXPECT_THROW(make_random_gnm(4, 7, 1), std::invalid_argument);
}

TEST(RandomGnm, CompleteGraphBoundary) {
  const Graph g = make_random_gnm(5, 10, 3);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
}

TEST(BookGraph, SizeAndPlantedClique) {
  const Graph g = make_book_graph(60, 300, 8, 99);
  EXPECT_EQ(g.num_vertices(), 60);
  EXPECT_EQ(g.num_edges(), 300);
  std::vector<int> planted;
  for (int v = 0; v < 8; ++v) planted.push_back(v);
  EXPECT_TRUE(is_clique(g, planted));
}

TEST(BookGraph, ChromaticNumberEqualsClique) {
  // k-partite + planted k-clique => chromatic number exactly k. The
  // modulo coloring v % k witnesses k-colorability; the clique forces k.
  const int k = 8;
  const Graph g = make_book_graph(60, 300, k, 99);
  std::vector<int> modulo(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    modulo[static_cast<std::size_t>(v)] = v % k;
  }
  EXPECT_TRUE(g.is_proper_coloring(modulo));
}

TEST(BookGraph, IsKPartite) {
  const int k = 8;
  const Graph g = make_book_graph(60, 300, k, 99);
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u % k, e.v % k) << "intra-group edge " << e.u << "-" << e.v;
  }
}

TEST(GamesGraph, NearRegularDegrees) {
  const Graph g = make_games_graph(120, 1276, 9, 5);
  EXPECT_EQ(g.num_edges(), 1276);
  int min_deg = g.num_vertices(), max_deg = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    min_deg = std::min(min_deg, g.degree(v));
    max_deg = std::max(max_deg, g.degree(v));
  }
  // Average degree ~21; the min-biased proposer keeps the spread tight
  // relative to a plain random graph.
  EXPECT_GE(min_deg, 8);
  EXPECT_LE(max_deg, 40);
}

TEST(GeometricGraph, HitsEdgeTargetApproximately) {
  const Graph g = make_geometric_graph(128, 774, 42);
  EXPECT_EQ(g.num_vertices(), 128);
  EXPECT_NEAR(g.num_edges(), 774, 40);
}

TEST(GeometricGraph, Deterministic) {
  const Graph a = make_geometric_graph(50, 200, 1);
  const Graph b = make_geometric_graph(50, 200, 1);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(RegisterGraph, PressureCliquePinned) {
  const int pressure = 12;
  const Graph g = make_register_graph(80, 900, pressure, 3);
  EXPECT_EQ(g.num_edges(), 900);
  std::vector<int> clique;
  for (int v = 0; v < pressure; ++v) clique.push_back(v);
  EXPECT_TRUE(is_clique(g, clique));
  // The modulo coloring witnesses pressure-colorability.
  std::vector<int> modulo(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    modulo[static_cast<std::size_t>(v)] = v % pressure;
  }
  EXPECT_TRUE(g.is_proper_coloring(modulo));
}

TEST(DimacsSuite, HasTwentyInstancesInTableOrder) {
  const auto suite = dimacs_suite();
  ASSERT_EQ(suite.size(), 20u);
  EXPECT_EQ(suite.front().name, "anna");
  EXPECT_EQ(suite.back().name, "zeroin.i.3");
}

TEST(DimacsSuite, SizesMatchTable1) {
  const auto suite = dimacs_suite();
  for (const Instance& inst : suite) {
    if (inst.name == "anna") {
      EXPECT_EQ(inst.graph.num_vertices(), 138);
      EXPECT_EQ(inst.graph.num_edges(), 986);
    } else if (inst.name == "queen8_12") {
      EXPECT_EQ(inst.graph.num_vertices(), 96);
      EXPECT_EQ(inst.graph.num_edges(), 1368);  // 2736 directed records
    } else if (inst.name == "zeroin.i.1") {
      EXPECT_EQ(inst.graph.num_vertices(), 211);
      EXPECT_EQ(inst.graph.num_edges(), 4100);
    }
  }
}

TEST(DimacsSuite, PinnedChromaticNumbersAreHeuristicallyReachable) {
  for (const Instance& inst : dimacs_suite()) {
    if (inst.chromatic_number < 0) continue;
    const auto coloring = dsatur_coloring(inst.graph);
    EXPECT_TRUE(inst.graph.is_proper_coloring(coloring)) << inst.name;
    // DSATUR can overshoot on the exact families; it must never beat the
    // pinned chromatic number.
    EXPECT_GE(Graph::count_colors(coloring), inst.chromatic_number)
        << inst.name;
  }
}

TEST(DimacsSuite, Deterministic) {
  const auto a = dimacs_suite();
  const auto b = dimacs_suite();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].graph.num_edges(), b[i].graph.num_edges()) << a[i].name;
  }
}

TEST(QueensSuite, MatchesAppendixInstances) {
  const auto suite = queens_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "queen5_5");
  EXPECT_EQ(suite[3].name, "queen8_12");
  EXPECT_EQ(suite[3].chromatic_number, 12);
}

}  // namespace
}  // namespace symcolor
