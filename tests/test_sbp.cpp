// Semantic tests for the four instance-independent SBP constructions,
// centred on the paper's Figure 1 worked example.
//
// Figure 1 graph: V1,V2,V3 form a triangle and V4 hangs off V3. Vertices
// are 0-indexed here (V1=0, V2=1, V3=2, V4=3) and colors 0-indexed, so
// the paper's "color 1" is color 0.

#include <gtest/gtest.h>

#include <cmath>

#include "coloring/encoder.h"
#include "coloring/sbp.h"
#include "pb/optimizer.h"
#include "symmetry/shatter.h"

namespace symcolor {
namespace {

Graph figure1_graph() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.finalize();
  return g;
}

/// Does construction `sbps` permit the given complete color assignment?
/// The x variables are pinned by unit clauses; auxiliary SBP variables
/// stay free, so satisfiability decides permission.
bool permitted(const Graph& g, int k, const SbpOptions& sbps,
               const std::vector<int>& colors) {
  ColoringEncoding enc = encode_k_coloring(g, k, sbps);
  for (int i = 0; i < g.num_vertices(); ++i) {
    enc.formula.add_unit(
        Lit::positive(enc.x(i, colors[static_cast<std::size_t>(i)])));
  }
  const OptResult r = solve_decision(enc.formula, {}, {});
  EXPECT_NE(r.status, OptStatus::Unknown);
  return r.status == OptStatus::Optimal;
}

/// Count permitted assignments by enumerating proper colorings of the
/// (tiny) graph directly and querying `permitted`.
int count_permitted(const Graph& g, int k, const SbpOptions& sbps) {
  const int n = g.num_vertices();
  int count = 0;
  std::vector<int> colors(static_cast<std::size_t>(n), 0);
  for (;;) {
    if (g.is_proper_coloring(colors) && permitted(g, k, sbps, colors)) {
      ++count;
    }
    int i = 0;
    while (i < n && ++colors[static_cast<std::size_t>(i)] == k) {
      colors[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return count;
}

// ---- NU: null-color elimination ----

TEST(NullColor, BansGapsInColorUsage) {
  const Graph g = figure1_graph();
  // Paper Figure 1(c): colors {1,3,4} (0-indexed {0,2,3}) banned...
  EXPECT_FALSE(permitted(g, 4, SbpOptions::nu_only(), {0, 2, 3, 0}));
  // ... colors {1,2,3} (0-indexed {0,1,2}) permitted.
  EXPECT_TRUE(permitted(g, 4, SbpOptions::nu_only(), {0, 1, 2, 0}));
}

TEST(NullColor, AllowsAnyOrderOfUsedPrefix) {
  const Graph g = figure1_graph();
  // Non-null colors may still permute freely under NU.
  EXPECT_TRUE(permitted(g, 4, SbpOptions::nu_only(), {1, 0, 2, 1}));
  EXPECT_TRUE(permitted(g, 4, SbpOptions::nu_only(), {2, 1, 0, 2}));
}

TEST(NullColor, PermittedCountMatchesTheory) {
  // 3-colorings of the figure-1 graph: 2 partitions x 3! orders = 12
  // proper colorings with exactly 3 colors out of K=4, plus 2x4!/1... with
  // K=4 every proper coloring uses 3 or 4 colors; 4-color colorings:
  // 2 partitions cannot make 4 non-empty classes on 4 vertices unless all
  // classes are singletons, which needs V1..V4 pairwise... V4 not adjacent
  // to V1/V2 so singleton partition is proper: 4! = 24 colorings.
  // Total proper: 12 + 24 = 36. Under NU, 3-color solutions must use
  // colors {0,1,2} (12 -> 2x3! = 12*? ) — exactly the 2x3! = 12 minus the
  // ones using a gap: all 3! orders on colors {0,1,2} stay: 2*6 = 12.
  // 4-color ones all survive (no null color): 24. NU total = 12 + 24 = 36
  // minus gapped 3-color ones (2 partitions x (4!/1! - 3!) = 2*18 = 36)...
  // Simpler: trust relative ordering checks below.
  const Graph g = figure1_graph();
  const int none = count_permitted(g, 3, SbpOptions::none());
  const int nu = count_permitted(g, 3, SbpOptions::nu_only());
  // With K = 3 and chi = 3 there are no null colors: NU changes nothing.
  EXPECT_EQ(none, nu);
  EXPECT_EQ(none, 12);  // 2 partitions x 3! color orders
}

TEST(NullColor, ReducesCountWhenNullColorsExist) {
  // Triangle alone with K=4: one partition, 4!/1! = 24 orderings of 3
  // used colors among 4; NU keeps only those using prefix {0,1,2}: 3! = 6.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  EXPECT_EQ(count_permitted(g, 4, SbpOptions::none()), 24);
  EXPECT_EQ(count_permitted(g, 4, SbpOptions::nu_only()), 6);
}

// ---- CA: cardinality ordering ----

TEST(Cardinality, LargestClassGetsLowestColor) {
  const Graph g = figure1_graph();
  // Partition {{V1,V4},{V2},{V3}}: the size-2 class must take color 0.
  EXPECT_TRUE(permitted(g, 4, SbpOptions::ca_only(), {0, 1, 2, 0}));
  EXPECT_TRUE(permitted(g, 4, SbpOptions::ca_only(), {0, 2, 1, 0}));
  // Figure 1(d) left: the size-2 class on color 3 is banned.
  EXPECT_FALSE(permitted(g, 4, SbpOptions::ca_only(), {2, 0, 1, 2}));
  EXPECT_FALSE(permitted(g, 4, SbpOptions::ca_only(), {1, 0, 2, 1}));
}

TEST(Cardinality, SubsumesNullColorElimination) {
  const Graph g = figure1_graph();
  // A gap (null color before used color) violates CA too.
  EXPECT_FALSE(permitted(g, 4, SbpOptions::ca_only(), {0, 2, 3, 0}));
}

TEST(Cardinality, TiedClassesStillPermuteFreely) {
  const Graph g = figure1_graph();
  // {V2} and {V3} are both singletons: colors 1 and 2 interchange.
  EXPECT_TRUE(permitted(g, 4, SbpOptions::ca_only(), {0, 1, 2, 0}));
  EXPECT_TRUE(permitted(g, 4, SbpOptions::ca_only(), {0, 2, 1, 0}));
}

TEST(Cardinality, StrictlyStrongerThanNuOnTriangleWithSlack) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  const int nu = count_permitted(g, 4, SbpOptions::nu_only());
  const int ca = count_permitted(g, 4, SbpOptions::ca_only());
  EXPECT_EQ(ca, nu);  // all classes are singletons: CA == NU here
  // On the figure-1 graph the size-2 class breaks ties: CA < NU.
  const Graph fig = figure1_graph();
  EXPECT_LT(count_permitted(fig, 3, SbpOptions::ca_only()),
            count_permitted(fig, 3, SbpOptions::nu_only()));
}

// ---- LI: lowest-index ordering ----

TEST(LowestIndex, UniqueAssignmentPerPartition) {
  const Graph g = figure1_graph();
  // Partition {{V1,V4},{V2},{V3}}: only {0,1,2,0} survives (paper 1(e)).
  EXPECT_TRUE(permitted(g, 4, SbpOptions::li_only(), {0, 1, 2, 0}));
  EXPECT_FALSE(permitted(g, 4, SbpOptions::li_only(), {0, 2, 1, 0}));
  // Partition {{V1},{V2,V4},{V3}}: only {0,1,2,1} survives.
  EXPECT_TRUE(permitted(g, 4, SbpOptions::li_only(), {0, 1, 2, 1}));
  EXPECT_FALSE(permitted(g, 4, SbpOptions::li_only(), {1, 0, 2, 0}));
}

TEST(LowestIndex, CompleteValueSymmetryBreaking) {
  // Exactly one permitted assignment per partition into independent sets:
  // the figure-1 graph has 2 three-class partitions, so K=3 gives 2.
  const Graph g = figure1_graph();
  EXPECT_EQ(count_permitted(g, 3, SbpOptions::li_only()), 2);
}

TEST(LowestIndex, VertexZeroAlwaysColorZero) {
  const Graph g = figure1_graph();
  for (int c = 1; c < 3; ++c) {
    EXPECT_FALSE(permitted(g, 3, SbpOptions::li_only(), {c, 0, 3 - c, c}));
  }
}

TEST(LowestIndex, SubsumesNullColorElimination) {
  // Every LI-permitted assignment uses a gap-free color prefix: a used
  // color k+1 forces color k to appear at a strictly smaller index. (LI
  // does NOT imply CA — it picks the lowest-index representative of each
  // partition, not the cardinality-sorted one.)
  const Graph g = figure1_graph();
  const int k = 4;
  const int n = g.num_vertices();
  std::vector<int> colors(static_cast<std::size_t>(n), 0);
  for (;;) {
    if (g.is_proper_coloring(colors) &&
        permitted(g, k, SbpOptions::li_only(), colors)) {
      EXPECT_TRUE(permitted(g, k, SbpOptions::nu_only(), colors));
    }
    int i = 0;
    while (i < n && ++colors[static_cast<std::size_t>(i)] == k) {
      colors[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) break;
  }
}

TEST(LowestIndex, DestroysAllFormulaSymmetries) {
  // Paper Table 2: with LI, Saucy finds no symmetries at all — not even
  // the V1<->V2 vertex swap.
  const Graph g = figure1_graph();
  const ColoringEncoding enc = encode_coloring(g, 3, SbpOptions::li_only());
  const SymmetryInfo info = detect_symmetries(enc.formula);
  EXPECT_DOUBLE_EQ(info.log10_order, 0.0);
  EXPECT_TRUE(info.generators.empty());
}

TEST(LowestIndex, NuAndCaPreserveVertexSwap) {
  // NU keeps the instance-dependent V1<->V2 swap alive (paper Section 3.3
  // discussion), so the encoded formula still has symmetries.
  const Graph g = figure1_graph();
  const ColoringEncoding enc = encode_coloring(g, 3, SbpOptions::nu_only());
  const SymmetryInfo info = detect_symmetries(enc.formula);
  EXPECT_GT(info.log10_order, 0.0);
}

// ---- LIq: the paper-literal quadratic LI variant ----

TEST(LowestIndexPaperLiteral, DescendingConvention) {
  // The paper's ordering clause makes lowest indices *descend* with the
  // color number: partition {{V1,V4},{V2},{V3}} keeps only {2,1,0,2}.
  const Graph g = figure1_graph();
  EXPECT_TRUE(permitted(g, 4, SbpOptions::li_paper(), {2, 1, 0, 2}));
  EXPECT_FALSE(permitted(g, 4, SbpOptions::li_paper(), {0, 1, 2, 0}));
  EXPECT_FALSE(permitted(g, 4, SbpOptions::li_paper(), {0, 2, 1, 0}));
}

TEST(LowestIndexPaperLiteral, CompletePerPartition) {
  // Same completeness as the chained LI: one assignment per partition.
  const Graph g = figure1_graph();
  EXPECT_EQ(count_permitted(g, 3, SbpOptions::li_paper()), 2);
}

TEST(LowestIndexPaperLiteral, QuadraticallyLarger) {
  const Graph g = figure1_graph();
  const ColoringEncoding chained =
      encode_coloring(g, 4, SbpOptions::li_only());
  const ColoringEncoding quadratic =
      encode_coloring(g, 4, SbpOptions::li_paper());
  // nK auxiliaries instead of 2nK, but pairwise exclusions dominate as n
  // grows; on this tiny graph sizes are comparable, so check var counts.
  EXPECT_EQ(quadratic.sbp_vars, 4 * 4);
  EXPECT_EQ(chained.sbp_vars, 2 * 4 * 4);
}

TEST(LowestIndexPaperLiteral, OptimalValuePreserved) {
  const Graph g = figure1_graph();
  const ColoringEncoding enc = encode_coloring(g, 4, SbpOptions::li_paper());
  const OptResult r = minimize_linear(enc.formula, {}, {});
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 3);
}

// ---- SC: selective coloring ----

TEST(SelectiveColoring, PinsMaxDegreeVertexAndNeighbour) {
  const Graph g = figure1_graph();
  const auto [first, second] = selective_coloring_pins(g);
  EXPECT_EQ(first, 2);   // V3 has degree 3
  EXPECT_EQ(second, 0);  // V1: highest-degree neighbour (tie -> smallest)
}

TEST(SelectiveColoring, OnlyPinnedColoringsPermitted) {
  const Graph g = figure1_graph();
  // V3 must take color 0 and V1 color 1.
  EXPECT_TRUE(permitted(g, 3, SbpOptions::sc_only(), {1, 2, 0, 1}));
  EXPECT_FALSE(permitted(g, 3, SbpOptions::sc_only(), {0, 1, 2, 0}));
}

TEST(SelectiveColoring, EdgelessGraphNoSecondPin) {
  Graph g(3);
  g.finalize();
  const auto [first, second] = selective_coloring_pins(g);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, -1);
}

TEST(SelectiveColoring, AddsExactlyTwoUnitClauses) {
  const Graph g = figure1_graph();
  const ColoringEncoding plain = encode_coloring(g, 3);
  const ColoringEncoding sc = encode_coloring(g, 3, SbpOptions::sc_only());
  EXPECT_EQ(sc.formula.num_clauses() - plain.formula.num_clauses(), 2);
  EXPECT_EQ(sc.sbp_clauses, 2);
}

// ---- optimality preservation across all constructions ----

class SbpRowTest : public ::testing::TestWithParam<int> {};

TEST_P(SbpRowTest, OptimalValuePreserved) {
  const SbpOptions sbps = paper_sbp_rows()[static_cast<std::size_t>(GetParam())];
  const Graph g = figure1_graph();
  const ColoringEncoding enc = encode_coloring(g, 4, sbps);
  const OptResult r = minimize_linear(enc.formula, {}, {});
  ASSERT_EQ(r.status, OptStatus::Optimal) << sbps.label();
  EXPECT_EQ(r.best_value, 3) << sbps.label();
  EXPECT_TRUE(g.is_proper_coloring(enc.decode(r.model))) << sbps.label();
}

TEST_P(SbpRowTest, InfeasibilityPreserved) {
  const SbpOptions sbps = paper_sbp_rows()[static_cast<std::size_t>(GetParam())];
  Graph g(4);  // K4 needs 4 colors; give only 3
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) g.add_edge(u, v);
  }
  g.finalize();
  const ColoringEncoding enc = encode_coloring(g, 3, sbps);
  const OptResult r = minimize_linear(enc.formula, {}, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible) << sbps.label();
}

TEST_P(SbpRowTest, SizeStatisticsConsistent) {
  const SbpOptions sbps = paper_sbp_rows()[static_cast<std::size_t>(GetParam())];
  const Graph g = figure1_graph();
  const ColoringEncoding plain = encode_coloring(g, 4);
  const ColoringEncoding with = encode_coloring(g, 4, sbps);
  EXPECT_EQ(with.formula.num_clauses() - plain.formula.num_clauses(),
            with.sbp_clauses);
  EXPECT_EQ(with.formula.num_pb() - plain.formula.num_pb(),
            with.sbp_pb_constraints);
  EXPECT_EQ(with.formula.num_vars() - plain.formula.num_vars(), with.sbp_vars);
}

INSTANTIATE_TEST_SUITE_P(AllRows, SbpRowTest, ::testing::Range(0, 7));

TEST(SbpSizes, MatchPaperFormulas) {
  const Graph g = figure1_graph();
  const int k = 4;
  // NU: K-1 binary clauses, no new vars or PB constraints.
  const ColoringEncoding nu = encode_coloring(g, k, SbpOptions::nu_only());
  EXPECT_EQ(nu.sbp_clauses, k - 1);
  EXPECT_EQ(nu.sbp_vars, 0);
  // CA: K-1 PB constraints.
  const ColoringEncoding ca = encode_coloring(g, k, SbpOptions::ca_only());
  EXPECT_EQ(ca.sbp_pb_constraints, k - 1);
  EXPECT_EQ(ca.sbp_clauses, 0);
  // LI: 2nK auxiliary variables.
  const ColoringEncoding li = encode_coloring(g, k, SbpOptions::li_only());
  EXPECT_EQ(li.sbp_vars, 2 * g.num_vertices() * k);
  EXPECT_GT(li.sbp_clauses, 4 * g.num_vertices() * k);
}

}  // namespace
}  // namespace symcolor
