// Tests for coloring heuristics and the exact DSATUR branch and bound.

#include <gtest/gtest.h>

#include <numeric>

#include "coloring/dsatur_bnb.h"
#include "coloring/heuristics.h"
#include "graph/generators.h"

namespace symcolor {
namespace {

Graph complete_graph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

Graph even_cycle(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  g.finalize();
  return g;
}

TEST(Greedy, ProperOnRandomGraph) {
  const Graph g = make_random_gnm(40, 200, 3);
  std::vector<int> order(40);
  std::iota(order.begin(), order.end(), 0);
  const auto colors = greedy_coloring(g, order);
  EXPECT_TRUE(g.is_proper_coloring(colors));
}

TEST(Greedy, OrderSizeMismatchThrows) {
  const Graph g = make_random_gnm(10, 20, 3);
  std::vector<int> order(5);
  EXPECT_THROW((void)greedy_coloring(g, order), std::invalid_argument);
}

TEST(Greedy, CompleteGraphUsesNColors) {
  const Graph g = complete_graph(5);
  std::vector<int> order{0, 1, 2, 3, 4};
  EXPECT_EQ(Graph::count_colors(greedy_coloring(g, order)), 5);
}

TEST(WelshPowell, ProperAndBoundedByMaxDegreePlusOne) {
  const Graph g = make_random_gnm(50, 300, 9);
  const auto colors = welsh_powell_coloring(g);
  EXPECT_TRUE(g.is_proper_coloring(colors));
  EXPECT_LE(Graph::count_colors(colors), g.max_degree() + 1);
}

TEST(Dsatur, OptimalOnBipartite) {
  // DSATUR is exact on bipartite graphs (Brelaz).
  const Graph g = even_cycle(10);
  const auto colors = dsatur_coloring(g);
  EXPECT_TRUE(g.is_proper_coloring(colors));
  EXPECT_EQ(Graph::count_colors(colors), 2);
}

TEST(Dsatur, OddCycleThreeColors) {
  const Graph g = even_cycle(9);  // odd length
  EXPECT_EQ(Graph::count_colors(dsatur_coloring(g)), 3);
}

TEST(Dsatur, CompleteGraph) {
  EXPECT_EQ(Graph::count_colors(dsatur_coloring(complete_graph(6))), 6);
}

TEST(Dsatur, EdgelessGraph) {
  Graph g(5);
  g.finalize();
  EXPECT_EQ(Graph::count_colors(dsatur_coloring(g)), 1);
}

TEST(HeuristicUpperBound, NeverBelowCliqueOnKnownFamilies) {
  EXPECT_EQ(heuristic_upper_bound(complete_graph(7)), 7);
  EXPECT_GE(heuristic_upper_bound(make_queen_graph(5, 5)), 5);
  EXPECT_GE(heuristic_upper_bound(make_myciel_dimacs(3)), 4);
  EXPECT_EQ(heuristic_upper_bound(Graph(0)), 0);
}

TEST(DsaturBnb, EmptyGraph) {
  const auto r = dsatur_branch_and_bound(Graph(0));
  EXPECT_EQ(r.num_colors, 0);
  EXPECT_TRUE(r.proved_optimal);
}

TEST(DsaturBnb, KnownChromaticNumbers) {
  EXPECT_EQ(dsatur_branch_and_bound(complete_graph(6)).num_colors, 6);
  EXPECT_EQ(dsatur_branch_and_bound(even_cycle(8)).num_colors, 2);
  EXPECT_EQ(dsatur_branch_and_bound(even_cycle(9)).num_colors, 3);
}

TEST(DsaturBnb, MycielskiFamily) {
  // chi(myciel_k DIMACS) = k + 1; triangle-free makes these hard for
  // clique-based bounds, a good stress for the search itself.
  EXPECT_EQ(dsatur_branch_and_bound(make_myciel_dimacs(3)).num_colors, 4);
  EXPECT_EQ(dsatur_branch_and_bound(make_myciel_dimacs(4)).num_colors, 5);
}

TEST(DsaturBnb, QueenGraphs) {
  EXPECT_EQ(dsatur_branch_and_bound(make_queen_graph(5, 5)).num_colors, 5);
  EXPECT_EQ(dsatur_branch_and_bound(make_queen_graph(6, 6)).num_colors, 7);
}

TEST(DsaturBnb, WitnessIsProper) {
  const Graph g = make_random_gnm(30, 150, 21);
  const auto r = dsatur_branch_and_bound(g);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_TRUE(g.is_proper_coloring(r.coloring));
  EXPECT_EQ(Graph::count_colors(r.coloring), r.num_colors);
}

TEST(DsaturBnb, NeverWorseThanDsaturHeuristic) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_random_gnm(25, 120, seed);
    const auto r = dsatur_branch_and_bound(g);
    EXPECT_LE(r.num_colors,
              Graph::count_colors(dsatur_coloring(g)));
  }
}

TEST(DsaturBnb, DeadlineGivesValidIncumbent) {
  const Graph g = make_random_gnm(60, 900, 4);
  const Deadline deadline(0.005);
  const auto r = dsatur_branch_and_bound(g, deadline);
  EXPECT_TRUE(g.is_proper_coloring(r.coloring));
}

}  // namespace
}  // namespace symcolor
