// Unit tests for src/util: timers, deterministic RNG, text helpers, and
// the minimal JSON value type behind the symcolor_serve protocol.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/json.h"
#include "util/rng.h"
#include "util/text.h"
#include "util/timer.h"

namespace symcolor {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(Timer, ResetRestartsFromZero) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.seconds(), 0.01);
}

TEST(Timer, MillisecondsMatchSeconds) {
  Timer t;
  const double s = t.seconds();
  EXPECT_NEAR(t.milliseconds(), s * 1000.0, 50.0);
}

TEST(Deadline, DefaultIsUnlimited) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(Deadline, ZeroBudgetIsUnlimited) {
  Deadline d(0.0);
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ExpiresAfterBudget) {
  Deadline d(0.01);
  EXPECT_FALSE(d.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), 0.0);
}

TEST(Deadline, RemainingIsPositiveBeforeExpiry) {
  Deadline d(100.0);
  EXPECT_GT(d.remaining(), 90.0);
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, NegativeBudgetIsUnlimited) {
  // The "<= 0 means unlimited" convention covers negatives, not just 0.
  Deadline d(-5.0);
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(Deadline, CopyPreservesTheOriginalClock) {
  // A copy shares the start instant — copying must not extend a budget.
  Deadline d(0.01);
  Deadline copy = d;
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(copy.expired());
  EXPECT_EQ(copy.remaining(), 0.0);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 500 draws
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double total = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) total += rng.uniform();
  EXPECT_NEAR(total / samples, 0.5, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(17);
  const auto p = rng.permutation(50);
  std::set<int> values(p.begin(), p.end());
  EXPECT_EQ(values.size(), 50u);
  EXPECT_EQ(*values.begin(), 0);
  EXPECT_EQ(*values.rbegin(), 49);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Text, SplitTokensBasic) {
  const auto tokens = split_tokens("a bb  ccc");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
}

TEST(Text, SplitTokensEmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_tokens("").empty());
  EXPECT_TRUE(split_tokens("  \t \n ").empty());
}

TEST(Text, SplitTokensCustomDelims) {
  const auto tokens = split_tokens("a,b;;c", ",;");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2], "c");
}

TEST(Text, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with("p edge 5 4", "p edge"));
  EXPECT_FALSE(starts_with("p", "p edge"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Text, FormatSecondsPrecisionBands) {
  EXPECT_EQ(format_seconds(0.014), "0.01");
  EXPECT_EQ(format_seconds(9.876), "9.88");
  EXPECT_EQ(format_seconds(42.345), "42.3");
  EXPECT_EQ(format_seconds(123.9), "124");
}

TEST(Text, FormatSecondsTimeout) {
  EXPECT_EQ(format_seconds(1000.0, true), "T/O");
}

TEST(Text, FormatSecondsClampsNegative) {
  EXPECT_EQ(format_seconds(-1.0), "0.00");
}

TEST(Text, FormatPow10SmallExact) {
  EXPECT_EQ(format_pow10(0.0), "1");
  EXPECT_EQ(format_pow10(std::log10(20.0)), "20");
}

TEST(Text, FormatPow10LargeScientific) {
  const std::string s = format_pow10(168.04);
  EXPECT_NE(s.find("e+168"), std::string::npos);
}

// ---- Json (the symcolor_serve wire format) ----

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool(true));
  EXPECT_EQ(Json::parse("-42")->as_int(), -42);
  EXPECT_TRUE(Json::parse("42")->is_int());
  EXPECT_NEAR(Json::parse("2.5e1")->as_double(), 25.0, 1e-9);
  EXPECT_FALSE(Json::parse("2.5e1")->is_int());
  EXPECT_EQ(Json::parse("\"hi\\nthere\"")->as_string(), "hi\nthere");
}

TEST(Json, ParsesNestedStructures) {
  const auto v =
      Json::parse(R"({"op":"solve","k":5,"clauses":[[1,-2],[2]],"f":true})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_string("op"), "solve");
  EXPECT_EQ(v->get_int("k"), 5);
  EXPECT_TRUE(v->get_bool("f"));
  const Json* clauses = v->find("clauses");
  ASSERT_NE(clauses, nullptr);
  ASSERT_EQ(clauses->as_array().size(), 2u);
  EXPECT_EQ(clauses->as_array()[0].as_array()[1].as_int(), -2);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("tru").has_value());
  EXPECT_FALSE(Json::parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(Json::parse("nan").has_value());
}

TEST(Json, DepthCapStopsHostileNesting) {
  std::string bomb;
  for (int i = 0; i < 2000; ++i) bomb += '[';
  EXPECT_FALSE(Json::parse(bomb).has_value());
  // A comfortably-nested document still parses.
  EXPECT_TRUE(Json::parse("[[[[[[[[[[1]]]]]]]]]]").has_value());
}

TEST(Json, DumpIsDeterministicAndRoundTrips) {
  Json obj;
  obj["b"] = 2;
  obj["a"] = std::string("x\"y");
  obj["c"] = Json::Array{Json(1), Json(true), Json(nullptr)};
  const std::string text = obj.dump();
  EXPECT_EQ(text, R"({"a":"x\"y","b":2,"c":[1,true,null]})");
  const auto back = Json::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dump(), text);
}

TEST(Json, ControlCharactersEscapeOnDump) {
  // ("a\x01b" would parse as {'a', 0x1b}: hex escapes are greedy.)
  const std::string raw = std::string("a") + '\x01' + 'b';
  const Json v(raw);
  EXPECT_EQ(v.dump(), "\"a\\u0001b\"");
  EXPECT_EQ(Json::parse(v.dump())->as_string(), raw);
}

}  // namespace
}  // namespace symcolor
