// Tests for permutation utilities and the Schreier-Sims group.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "automorphism/group.h"
#include "automorphism/perm.h"

namespace symcolor {
namespace {

TEST(Perm, IdentityBasics) {
  const Perm id = identity_perm(5);
  EXPECT_TRUE(is_identity(id));
  EXPECT_TRUE(is_permutation(id));
  EXPECT_TRUE(support(id).empty());
}

TEST(Perm, IsPermutationRejectsBadVectors) {
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 0}));
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 2}));
  EXPECT_FALSE(is_permutation(std::vector<int>{-1, 0}));
  EXPECT_TRUE(is_permutation(std::vector<int>{1, 0}));
}

TEST(Perm, ComposeAppliesLeftThenRight) {
  // a: 0->1->2->0; b: swap 0,1. compose(a,b)[0] = b[a[0]] = b[1] = 0.
  const Perm a{1, 2, 0};
  const Perm b{1, 0, 2};
  const Perm c = compose(a, b);
  EXPECT_EQ(c[0], 0);
  EXPECT_EQ(c[1], 2);
  EXPECT_EQ(c[2], 1);
}

TEST(Perm, InverseComposesToIdentity) {
  const Perm p{2, 0, 3, 1, 4};
  EXPECT_TRUE(is_identity(compose(p, inverse(p))));
  EXPECT_TRUE(is_identity(compose(inverse(p), p)));
}

TEST(Perm, SupportListsMovedPoints) {
  const Perm p{0, 2, 1, 3};
  const auto s = support(p);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 2);
}

TEST(Perm, CycleDecomposition) {
  const Perm p{1, 0, 3, 4, 2};
  const auto cs = cycles(p);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(cs[1], (std::vector<int>{2, 3, 4}));
}

TEST(Perm, OrderIsLcmOfCycleLengths) {
  const Perm p{1, 0, 3, 4, 2};  // 2-cycle and 3-cycle
  EXPECT_EQ(perm_order(p), 6);
  EXPECT_EQ(perm_order(identity_perm(4)), 1);
}

TEST(PermGroup, TrivialGroup) {
  PermGroup g(5);
  EXPECT_DOUBLE_EQ(static_cast<double>(g.order()), 1.0);
  EXPECT_DOUBLE_EQ(g.log10_order(), 0.0);
  EXPECT_TRUE(g.contains(identity_perm(5)));
  EXPECT_FALSE(g.contains(Perm{1, 0, 2, 3, 4}));
}

TEST(PermGroup, SymmetricGroupFromTwoGenerators) {
  // S_5 = <(0 1), (0 1 2 3 4)>; order 120.
  PermGroup g(5);
  g.add_generator(Perm{1, 0, 2, 3, 4});
  g.add_generator(Perm{1, 2, 3, 4, 0});
  EXPECT_NEAR(static_cast<double>(g.order()), 120.0, 1e-9);
  EXPECT_TRUE(g.contains(Perm{4, 3, 2, 1, 0}));
}

TEST(PermGroup, CyclicGroup) {
  PermGroup g(6);
  g.add_generator(Perm{1, 2, 3, 4, 5, 0});
  EXPECT_NEAR(static_cast<double>(g.order()), 6.0, 1e-9);
  EXPECT_FALSE(g.contains(Perm{1, 0, 2, 3, 4, 5}));  // a swap is not a rotation
}

TEST(PermGroup, DihedralGroup) {
  // D_6 on a hexagon: rotation + reflection, order 12.
  PermGroup g(6);
  g.add_generator(Perm{1, 2, 3, 4, 5, 0});
  g.add_generator(Perm{0, 5, 4, 3, 2, 1});
  EXPECT_NEAR(static_cast<double>(g.order()), 12.0, 1e-9);
}

TEST(PermGroup, KleinFourGroup) {
  PermGroup g(4);
  g.add_generator(Perm{1, 0, 3, 2});
  g.add_generator(Perm{2, 3, 0, 1});
  EXPECT_NEAR(static_cast<double>(g.order()), 4.0, 1e-9);
  EXPECT_TRUE(g.contains(Perm{3, 2, 1, 0}));
}

TEST(PermGroup, DirectProductOfSwaps) {
  // <(0 1)> x <(2 3)> x <(4 5)>: order 8.
  PermGroup g(6);
  g.add_generator(Perm{1, 0, 2, 3, 4, 5});
  g.add_generator(Perm{0, 1, 3, 2, 4, 5});
  g.add_generator(Perm{0, 1, 2, 3, 5, 4});
  EXPECT_NEAR(static_cast<double>(g.order()), 8.0, 1e-9);
}

TEST(PermGroup, DuplicateGeneratorsIgnored) {
  PermGroup g(4);
  g.add_generator(Perm{1, 0, 2, 3});
  g.add_generator(Perm{1, 0, 2, 3});
  g.add_generator(identity_perm(4));
  EXPECT_NEAR(static_cast<double>(g.order()), 2.0, 1e-9);
  EXPECT_EQ(g.generators().size(), 1u);
}

TEST(PermGroup, MembershipOfProducts) {
  PermGroup g(5);
  const Perm a{1, 0, 2, 3, 4};
  const Perm b{0, 1, 3, 2, 4};
  g.add_generator(a);
  g.add_generator(b);
  EXPECT_TRUE(g.contains(compose(a, b)));
  EXPECT_TRUE(g.contains(compose(b, a)));
  EXPECT_FALSE(g.contains(Perm{0, 1, 2, 4, 3}));
}

TEST(PermGroup, OrbitOfPoint) {
  PermGroup g(6);
  g.add_generator(Perm{1, 2, 0, 3, 4, 5});  // 3-cycle on 0,1,2
  auto orbit = g.orbit_of(0);
  std::sort(orbit.begin(), orbit.end());
  EXPECT_EQ(orbit, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(g.orbit_of(4), std::vector<int>{4});
}

TEST(PermGroup, LargeSymmetricGroupLog10) {
  // S_20 has order 20! ~ 2.43e18: log10 ~ 18.386.
  const int n = 20;
  PermGroup g(n);
  Perm swap_gen = identity_perm(n);
  std::swap(swap_gen[0], swap_gen[1]);
  Perm cycle(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) cycle[static_cast<std::size_t>(i)] = (i + 1) % n;
  g.add_generator(swap_gen);
  g.add_generator(cycle);
  EXPECT_NEAR(g.log10_order(), 18.386, 0.01);
}

}  // namespace
}  // namespace symcolor
