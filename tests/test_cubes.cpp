// Cube-and-conquer tests: queue semantics, lookahead generation, partition
// soundness (Sat/Unsat agreement with the 1-thread CDCL reference on the
// queen/myciel/random suite at 1, 2 and 4 workers), core-driven sibling
// pruning never killing a satisfiable cube, deterministic-mode
// reproducibility, budget-trip containment, dead-worker fault isolation,
// the aggregated all-workers stats view, and the sharded ClauseExchange.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cnf/formula.h"
#include "coloring/encoder.h"
#include "graph/generators.h"
#include "pb/solver_profiles.h"
#include "sat/cube_solver.h"
#include "sat/cubes.h"
#include "sat/portfolio.h"

namespace symcolor {
namespace {

/// Plain (SBP-free) queen5 coloring CNF: k=4 UNSAT in ~30 conflicts, k=5
/// SAT — hard enough that tiny warmups/slices exercise the cube phase.
Formula queen5_plain(int k) {
  return encode_k_coloring(make_queen_graph(5, 5), k, SbpOptions::none())
      .formula;
}

Formula myciel3_plain(int k) {
  return encode_k_coloring(make_myciel_dimacs(3), k, SbpOptions::none())
      .formula;
}

Formula pigeonhole_formula(int pigeons, int holes,
                           std::vector<std::vector<Var>>* vars = nullptr) {
  Formula f;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(in[static_cast<std::size_t>(p)]
                                  [static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.add_clause({Lit::negative(in[static_cast<std::size_t>(p1)]
                                      [static_cast<std::size_t>(h)]),
                      Lit::negative(in[static_cast<std::size_t>(p2)]
                                      [static_cast<std::size_t>(h)])});
      }
    }
  }
  if (vars != nullptr) *vars = std::move(in);
  return f;
}

/// Cube-engine config with warmup/slice small enough that even the test
/// instances reach the cube phase and trigger work-stealing splits.
SolverConfig cube_config(int depth, int threads,
                         std::int64_t warmup = 8,
                         std::int64_t slice = 64) {
  SolverConfig c = profile_config(SolverKind::PbsII);
  c.cube_depth = depth;
  c.portfolio_threads = threads;
  c.cube_warmup_conflicts = warmup;
  c.cube_conflict_slice = slice;
  return c;
}

// ---- CubeQueue semantics ----

TEST(CubeQueue, PopDrainsInDealOrderAndExhausts) {
  CubeQueue q;
  q.push({{Lit::positive(0)}, 1});
  q.push({{Lit::positive(1)}, 1});
  Cube c;
  ASSERT_TRUE(q.pop(&c));
  EXPECT_EQ(c.lits[0], Lit::positive(0));
  q.finish();
  ASSERT_TRUE(q.pop(&c));
  EXPECT_EQ(c.lits[0], Lit::positive(1));
  q.finish();
  // All outstanding work finished: pop reports exhaustion, not a block.
  EXPECT_FALSE(q.pop(&c));
}

TEST(CubeQueue, SplitKeepsOutstandingPositiveUntilChildrenFinish) {
  CubeQueue q;
  q.push({{Lit::positive(0)}, 1});
  Cube c;
  ASSERT_TRUE(q.pop(&c));
  // Split: children in before the parent is finished.
  q.push({{Lit::positive(0), Lit::positive(1)}, 2});
  q.push({{Lit::positive(0), Lit::negative(1)}, 2});
  q.finish();
  EXPECT_EQ(q.outstanding(), 2u);
  ASSERT_TRUE(q.pop(&c));
  q.finish();
  ASSERT_TRUE(q.pop(&c));
  q.finish();
  EXPECT_FALSE(q.pop(&c));
}

TEST(CubeQueue, PruneRemovesOnlyMatchingQueuedCubes) {
  CubeQueue q;
  q.push({{Lit::positive(0), Lit::positive(1)}, 2});
  q.push({{Lit::positive(0), Lit::negative(1)}, 2});
  q.push({{Lit::negative(0), Lit::positive(1)}, 2});
  // Prune everything containing +x0 — the sibling-subsumption shape.
  const std::size_t cut = q.prune([](const Cube& cube) {
    return std::find(cube.lits.begin(), cube.lits.end(),
                     Lit::positive(0)) != cube.lits.end();
  });
  EXPECT_EQ(cut, 2u);
  EXPECT_EQ(q.outstanding(), 1u);
  Cube c;
  ASSERT_TRUE(q.pop(&c));
  EXPECT_EQ(c.lits[0], Lit::negative(0));
  q.finish();
  EXPECT_FALSE(q.pop(&c));
}

TEST(CubeQueue, StopWakesAndFailsPop) {
  CubeQueue q;
  q.push({{Lit::positive(0)}, 1});
  q.stop();
  Cube c;
  EXPECT_FALSE(q.pop(&c));
}

// ---- lookahead generation ----

TEST(CubeGen, FrontierRespectsDepthAndDistinctness) {
  const Formula f = queen5_plain(5);
  CdclSolver probe(f, profile_config(SolverKind::PbsII));
  CubeGenOptions options;
  options.depth = 3;
  CubeGenStats stats;
  const std::vector<Cube> cubes = generate_cubes(probe, {}, options, &stats);
  ASSERT_FALSE(cubes.empty());
  EXPECT_FALSE(stats.root_refuted);
  EXPECT_GT(stats.probes, 0);
  EXPECT_LE(cubes.size(), 8u);  // 2^depth
  for (const Cube& c : cubes) {
    EXPECT_LE(c.depth, 3);
    EXPECT_LE(c.lits.size(), 3u);
  }
  // No two cubes may be identical (the partition would double-count).
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    for (std::size_t j = i + 1; j < cubes.size(); ++j) {
      EXPECT_NE(cubes[i].lits, cubes[j].lits);
    }
  }
}

TEST(CubeGen, RootRefutedOnPropagationUnsatPrefix) {
  std::vector<std::vector<Var>> vars;
  const Formula f = pigeonhole_formula(4, 4, &vars);
  CdclSolver probe(f, profile_config(SolverKind::PbsII));
  // Two pigeons assumed into one hole: refuted by one binary clause.
  const std::vector<Lit> clash = {Lit::positive(vars[0][0]),
                                  Lit::positive(vars[1][0])};
  CubeGenOptions options;
  CubeGenStats stats;
  const std::vector<Cube> cubes =
      generate_cubes(probe, clash, options, &stats);
  EXPECT_TRUE(cubes.empty());
  EXPECT_TRUE(stats.root_refuted);
  // The probe must leave the solver reusable.
  EXPECT_EQ(probe.solve(), SolveResult::Sat);
}

// ---- partition soundness: agreement with the sequential reference ----

TEST(CubeSolve, AgreesWithSequentialAcrossSuiteAndWorkerCounts) {
  struct Case {
    Formula formula;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({queen5_plain(4), "queen5 k=4"});
  cases.push_back({queen5_plain(5), "queen5 k=5"});
  cases.push_back({myciel3_plain(3), "myciel3 k=3"});
  cases.push_back({myciel3_plain(4), "myciel3 k=4"});
  cases.push_back(
      {encode_k_coloring(make_random_gnm(18, 60, 0xC0FFEE), 4,
                         SbpOptions::none())
           .formula,
       "gnm(18,60) k=4"});
  cases.push_back(
      {encode_k_coloring(make_random_gnm(18, 60, 0xC0FFEE), 6,
                         SbpOptions::none())
           .formula,
       "gnm(18,60) k=6"});
  for (const Case& c : cases) {
    CdclSolver reference(c.formula, profile_config(SolverKind::PbsII));
    const SolveResult expected = reference.solve();
    ASSERT_NE(expected, SolveResult::Unknown) << c.name;
    for (const int workers : {1, 2, 4}) {
      CubeAndConquerSolver solver(c.formula, cube_config(3, workers));
      const SolveResult got = solver.solve();
      EXPECT_EQ(got, expected) << c.name << " @ " << workers << " workers";
      if (got == SolveResult::Sat) {
        EXPECT_TRUE(c.formula.satisfied_by(solver.model()))
            << c.name << " @ " << workers << " workers";
      }
      if (got == SolveResult::Unsat) {
        // No caller assumptions: the Unsat certificate is an empty core.
        EXPECT_TRUE(solver.last_core().empty()) << c.name;
      }
    }
  }
}

TEST(CubeSolve, TinySlicesForceStealingSplitsWithoutChangingAnswers) {
  // Slice of 4 conflicts: nearly every cube comes back stuck, splits on
  // the stuck worker, and is re-dealt — the full work-stealing loop —
  // while answers must not move.
  for (const int workers : {1, 2}) {
    SolverConfig config = cube_config(2, workers, /*warmup=*/4, /*slice=*/4);
    CubeAndConquerSolver unsat(queen5_plain(4), config);
    EXPECT_EQ(unsat.solve(), SolveResult::Unsat) << workers << " workers";
    EXPECT_GT(unsat.last_cubes() + unsat.last_splits(), 0u)
        << workers << " workers";
    CubeAndConquerSolver sat(queen5_plain(5), config);
    EXPECT_EQ(sat.solve(), SolveResult::Sat) << workers << " workers";
    EXPECT_TRUE(queen5_plain(5).satisfied_by(sat.model()));
  }
}

TEST(CubeSolve, RefutationReportsCubeScheduleStats) {
  // queen6 at k=6 is UNSAT at ~15k conflicts — deep enough that the cube
  // schedule (refutations, possibly pruning) actually runs.
  const Formula f =
      encode_k_coloring(make_queen_graph(6, 6), 6, SbpOptions::nu_only())
          .formula;
  CubeAndConquerSolver solver(f, cube_config(3, 2, /*warmup=*/200,
                                             /*slice=*/2000));
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.last_cubes(), 0u);
  EXPECT_GT(solver.last_refuted_cubes(), 0u);
  // Aggregated view covers every worker: at least the winner's own work.
  EXPECT_GE(solver.aggregated_stats().conflicts, solver.stats().conflicts);
}

// ---- core semantics under caller assumptions ----

TEST(CubeSolve, AssumptionCoreIsValidSubsetOfAssumptions) {
  std::vector<std::vector<Var>> vars;
  const Formula f = pigeonhole_formula(5, 5, &vars);
  for (const int workers : {1, 2}) {
    CubeAndConquerSolver solver(f, cube_config(2, workers));
    // Three pigeons squeezed into two holes (plus untouched slack
    // everywhere else): unsat under the assumptions, sat without them.
    std::vector<Lit> assumptions;
    for (int p = 0; p < 3; ++p) {
      for (int h = 2; h < 5; ++h) {
        assumptions.push_back(Lit::negative(
            vars[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
      }
    }
    ASSERT_EQ(solver.solve({}, assumptions), SolveResult::Unsat);
    const std::span<const Lit> core = solver.last_core();
    EXPECT_FALSE(core.empty());
    for (const Lit l : core) {
      EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                assumptions.end())
          << "core literal is not an assumption";
    }
    // The reported core must itself refute (validity, not just shape).
    CdclSolver check(f, profile_config(SolverKind::PbsII));
    EXPECT_EQ(check.solve({}, core), SolveResult::Unsat);
    // And the engine must answer Sat once the assumptions are retracted.
    EXPECT_EQ(solver.solve(), SolveResult::Sat);
  }
}

// ---- deterministic mode ----

TEST(CubeSolve, DeterministicModeReproducesAnswerModelAndStats) {
  for (const int k : {4, 5}) {
    SolverConfig config = cube_config(3, 4);
    config.portfolio_deterministic = true;
    CubeAndConquerSolver a(queen5_plain(k), config);
    CubeAndConquerSolver b(queen5_plain(k), config);
    const SolveResult ra = a.solve();
    const SolveResult rb = b.solve();
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(a.model(), b.model());
    EXPECT_EQ(a.stats().conflicts, b.stats().conflicts);
    EXPECT_EQ(a.stats().decisions, b.stats().decisions);
    EXPECT_EQ(a.last_cubes(), b.last_cubes());
    EXPECT_EQ(a.last_pruned_siblings(), b.last_pruned_siblings());
  }
}

// ---- budget containment ----

TEST(CubeSolve, PresetInterruptReturnsUnknownWithTripThenRecovers) {
  SolveBudget budget;
  budget.interrupt();
  CubeAndConquerSolver solver(queen5_plain(5), cube_config(3, 2));
  EXPECT_EQ(solver.solve(budget), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Interrupt);
  budget.clear_interrupt();
  EXPECT_EQ(solver.solve(budget), SolveResult::Sat);
}

TEST(CubeSolve, ConflictBudgetTripsWithWellFormedStats) {
  // php(8,7) needs far more than 60 conflicts; the cap must surface as a
  // clean Unknown with a recorded trip, at any worker count.
  const Formula f = pigeonhole_formula(8, 7);
  for (const int workers : {1, 2}) {
    SolverConfig config = cube_config(2, workers, /*warmup=*/16,
                                      /*slice=*/16);
    config.cube_max_extra_depth = 1;  // converge to slice-free cubes fast
    CubeAndConquerSolver solver(f, config);
    const SolveBudget budget(0.0, /*conflicts=*/60, 0);
    EXPECT_EQ(solver.solve(budget), SolveResult::Unknown)
        << workers << " workers";
    EXPECT_NE(solver.last_trip(), BudgetTrip::None);
    EXPECT_GT(solver.stats().conflicts, 0);
    // Unknown never carries a stale model claim: solving unconstrained
    // afterwards still refutes.
    EXPECT_EQ(solver.solve(), SolveResult::Unsat) << workers << " workers";
  }
}

// ---- fault isolation ----

TEST(CubeFaults, DeadCubeWorkerIsContainedAndAnswersStayCorrect) {
  for (const int k : {4, 5}) {
    SolverConfig config = cube_config(3, 2, /*warmup=*/4, /*slice=*/32);
    config.fault_injection.worker = 1;
    config.fault_injection.throw_after_conflicts = 1;
    CubeAndConquerSolver solver(queen5_plain(k), config);
    const SolveResult r = solver.solve();
    EXPECT_EQ(r, k == 5 ? SolveResult::Sat : SolveResult::Unsat) << "k=" << k;
    EXPECT_LE(solver.last_fault_count(), 1) << "k=" << k;
    // The fault spec is one-shot: a later solve runs healthy.
    if (solver.last_fault_count() == 1) {
      EXPECT_EQ(solver.solve(),
                k == 5 ? SolveResult::Sat : SolveResult::Unsat);
      EXPECT_EQ(solver.last_fault_count(), 0);
    }
  }
}

TEST(CubeFaults, AllWorkersDeadRethrows) {
  SolverConfig config = cube_config(3, 2, /*warmup=*/4, /*slice=*/32);
  config.fault_injection.worker = -1;  // every worker
  config.fault_injection.throw_after_conflicts = 1;
  CubeAndConquerSolver solver(queen5_plain(4), config);
  EXPECT_THROW(solver.solve(), std::exception);
}

// ---- aggregated stats ----

TEST(AggregatedStats, SequentialEngineAggregatedEqualsStats) {
  CdclSolver solver(queen5_plain(4), profile_config(SolverKind::PbsII));
  ASSERT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_EQ(&solver.aggregated_stats(), &solver.stats());
}

TEST(AggregatedStats, PortfolioAggregatedCountsAllWorkersAndAccumulates) {
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = 2;
  config.portfolio_deterministic = true;  // every worker runs to completion
  PortfolioSolver solver(queen5_plain(4), config);
  ASSERT_EQ(solver.solve(), SolveResult::Unsat);
  const std::int64_t first = solver.aggregated_stats().conflicts;
  // Both workers refuted the instance, so the all-workers sum must exceed
  // the winner's own count.
  EXPECT_GT(first, solver.stats().conflicts);
  ASSERT_EQ(solver.solve(), SolveResult::Unsat);
  // Cumulative across solves — never reset, though an incremental
  // re-solve may refute at the root for free off retained learnts.
  EXPECT_GE(solver.aggregated_stats().conflicts, first);
}

TEST(AggregatedStats, CubeAggregatedIncludesWarmupAndWorkers) {
  CubeAndConquerSolver solver(queen5_plain(4), cube_config(3, 2));
  ASSERT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GE(solver.aggregated_stats().conflicts, solver.stats().conflicts);
  EXPECT_GT(solver.aggregated_stats().propagations, 0);
}

// ---- sharded ClauseExchange ----

TEST(ShardedExchange, ImportSeesAllForeignShardsAndSkipsOwn) {
  ClauseExchange exchange(64, 4);
  const std::vector<Lit> c0 = {Lit::positive(0), Lit::positive(1)};
  const std::vector<Lit> c1 = {Lit::negative(1), Lit::positive(2)};
  const std::vector<Lit> c2 = {Lit::negative(2)};
  EXPECT_TRUE(exchange.export_clause(0, c0, 2));
  EXPECT_TRUE(exchange.export_clause(1, c1, 2));
  EXPECT_TRUE(exchange.export_clause(2, c2, 1));
  EXPECT_EQ(exchange.exported(), 3u);

  std::size_t cursor = 0;
  std::vector<SharedClause> got;
  exchange.import_clauses(0, &cursor, &got);
  ASSERT_EQ(got.size(), 2u);  // workers 1 and 2, own shard skipped
  EXPECT_EQ(cursor, 3u);
  // Cursor advanced: a re-import drains nothing new.
  got.clear();
  exchange.import_clauses(0, &cursor, &got);
  EXPECT_TRUE(got.empty());
  // A later export is picked up from the cursor onwards.
  EXPECT_TRUE(exchange.export_clause(3, c0, 2));
  exchange.import_clauses(0, &cursor, &got);
  EXPECT_EQ(got.size(), 1u);
}

TEST(ShardedExchange, CapacityBoundsAcceptanceAcrossShards) {
  ClauseExchange exchange(2, 4);
  const std::vector<Lit> c = {Lit::positive(0)};
  EXPECT_TRUE(exchange.export_clause(0, c, 1));
  EXPECT_TRUE(exchange.export_clause(1, c, 1));
  EXPECT_FALSE(exchange.export_clause(2, c, 1));  // global cap, not per-shard
  EXPECT_EQ(exchange.exported(), 2u);
  EXPECT_EQ(exchange.dropped(), 1u);
  std::size_t cursor = 0;
  std::vector<SharedClause> got;
  exchange.import_clauses(3, &cursor, &got);
  EXPECT_EQ(got.size(), 2u);
}

TEST(ShardedExchange, OutOfRangeWorkerSharesLastShardCorrectly) {
  ClauseExchange exchange(8, 2);  // workers 5 and 7 clamp onto shard 1
  const std::vector<Lit> c = {Lit::positive(0)};
  EXPECT_TRUE(exchange.export_clause(5, c, 1));
  EXPECT_TRUE(exchange.export_clause(7, c, 1));
  std::size_t cursor = 0;
  std::vector<SharedClause> got;
  // Worker 5 still skips only its OWN exports (entries carry the worker
  // id, not just the shard index).
  exchange.import_clauses(5, &cursor, &got);
  EXPECT_EQ(got.size(), 1u);
}

}  // namespace
}  // namespace symcolor
