// Cutting-planes PB conflict analysis tests: strength separation against
// the clause-weakening path on pigeonhole counting instances, learned-PB
// database reduction, brute-force soundness sweeps, weaken-vs-native
// equivalence on the queen/myciel optimizer suite at 1 and 2 portfolio
// threads, and the int64 overflow guards on PB construction and solving.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "cnf/formula.h"
#include "coloring/encoder.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "sat/cdcl.h"
#include "util/rng.h"

namespace symcolor {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/// Pigeonhole with the per-hole at-most-one rows kept as genuine PB
/// constraints (not expanded to clauses): the workload where cutting
/// planes is exponentially stronger than clause learning.
Formula php_pb(int pigeons, int holes) {
  Formula f;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    std::vector<Lit> col;
    for (int p = 0; p < pigeons; ++p) {
      col.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_at_most(col, 1);
  }
  return f;
}

bool brute_force_sat(const Formula& f) {
  const int n = f.num_vars();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<LBool> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    if (f.satisfied_by(vals)) return true;
  }
  return false;
}

// ---- strength: native PB learning vs clause weakening ----

TEST(CuttingPlanes, RefutesPigeonholeExponentiallyFaster) {
  // PHP(8,7) with PB at-most-one rows: the weakening path needs thousands
  // of conflicts (clause learning cannot count), the cutting-planes path
  // derives the counting argument in a few hundred.
  const Formula f = php_pb(8, 7);
  SolverConfig weaken;
  weaken.pb_analysis = PbAnalysis::Weaken;
  SolverConfig native = weaken;
  native.pb_analysis = PbAnalysis::CuttingPlanes;

  CdclSolver w(f, weaken);
  CdclSolver n(f, native);
  EXPECT_EQ(w.solve(), SolveResult::Unsat);
  EXPECT_EQ(n.solve(), SolveResult::Unsat);
  EXPECT_EQ(w.stats().learned_pbs, 0);
  EXPECT_GT(n.stats().learned_pbs, 0);
  EXPECT_GT(n.stats().pb_resolutions, 0);
  // The separation is orders of magnitude; assert a conservative gap so
  // heuristic drift cannot flake the test.
  EXPECT_GT(w.stats().conflicts, 2000);
  EXPECT_LT(n.stats().conflicts, 1000);
}

TEST(CuttingPlanes, GalenaProfileUsesNativePbLearning) {
  EXPECT_EQ(profile_config(SolverKind::Galena).pb_analysis,
            PbAnalysis::CuttingPlanes);
  EXPECT_EQ(profile_config(SolverKind::PbsII).pb_analysis, PbAnalysis::Weaken);
  CdclSolver solver(php_pb(8, 7), profile_config(SolverKind::Galena));
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().learned_pbs, 0);
}

TEST(CuttingPlanes, LearnedPbDatabaseIsReduced) {
  // A tiny learnt limit forces reduce_db() while native analysis keeps
  // learning PB rows: the PB tier machinery must delete cold rows and the
  // answer must be unaffected.
  SolverConfig config;
  config.pb_analysis = PbAnalysis::CuttingPlanes;
  config.max_learnts_init = 8;
  CdclSolver solver(php_pb(9, 8), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().learned_pbs, 0);
  EXPECT_GT(solver.stats().deleted_pbs, 0);
  EXPECT_LT(solver.stats().deleted_pbs, solver.stats().learned_pbs);
}

TEST(CuttingPlanes, AssumptionsWithPbConflicts) {
  // Assumption pseudo-decisions have no reason to resolve on; analysis
  // must still terminate (weaken-at-decision or clausal fallback) and the
  // assumption answer must stay exact and non-sticky.
  Formula f;
  const Var first = f.new_vars(5);
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 3);
  SolverConfig config;
  config.pb_analysis = PbAnalysis::CuttingPlanes;
  CdclSolver solver(f, config);
  const std::vector<Lit> assume{~lits[0], ~lits[1], ~lits[2]};
  EXPECT_EQ(solver.solve({}, assume), SolveResult::Unsat);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
}

// ---- soundness sweeps against brute force ----

class CuttingPlanesSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CuttingPlanesSweep, MixedCnfPbAgreesWithBruteForce) {
  Rng rng(GetParam());
  const int vars = 8;
  Formula f;
  f.new_vars(vars);
  for (int c = 0; c < 8; ++c) {
    Clause clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    }
    f.add_clause(std::move(clause));
  }
  for (int c = 0; c < 4; ++c) {
    std::vector<PbTerm> terms;
    for (int i = 0; i < 4; ++i) {
      terms.push_back({static_cast<std::int64_t>(1 + rng.below(4)),
                       Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5))});
    }
    f.add_pb(PbConstraint::at_least(std::move(terms),
                                    static_cast<std::int64_t>(1 + rng.below(6))));
  }
  // A tiny learnt limit keeps the learned-PB GC churning through the
  // whole sweep, so compaction/remap bugs cannot hide.
  SolverConfig config;
  config.pb_analysis = PbAnalysis::CuttingPlanes;
  config.max_learnts_init = 4;
  CdclSolver solver(f, config);
  const SolveResult r = solver.solve();
  ASSERT_NE(r, SolveResult::Unknown);
  EXPECT_EQ(r == SolveResult::Sat, brute_force_sat(f));
  if (r == SolveResult::Sat) {
    EXPECT_TRUE(f.satisfied_by(solver.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CuttingPlanesSweep,
                         ::testing::Range<std::uint64_t>(300, 325));

// ---- weaken vs cutting-planes equivalence on the coloring suite ----

TEST(PbAnalysisEquivalence, OptimizerOptimaMatchOnQueenMyciel) {
  // chi(queen5) = 5, chi(myciel3) = 4. Both analysis modes, at 1 and 2
  // portfolio threads, must report identical optima through the linear
  // optimizer (whose objective-bound constraints are genuine weighted PB
  // rows — exactly the path native analysis changes).
  struct Case {
    Graph graph;
    int optimum;
  };
  std::vector<Case> cases;
  cases.push_back({make_queen_graph(5, 5), 5});
  cases.push_back({make_myciel_dimacs(3), 4});
  for (const Case& c : cases) {
    const ColoringEncoding enc =
        encode_coloring(c.graph, c.optimum + 2, SbpOptions::nu_sc());
    for (const int threads : {1, 2}) {
      SolverConfig weaken = profile_config(SolverKind::PbsII);
      weaken.portfolio_threads = threads;
      SolverConfig native = weaken;
      native.pb_analysis = PbAnalysis::CuttingPlanes;

      const OptResult w = minimize_linear(enc.formula, weaken, Deadline{});
      const OptResult n = minimize_linear(enc.formula, native, Deadline{});
      ASSERT_EQ(w.status, OptStatus::Optimal) << threads << " threads";
      ASSERT_EQ(n.status, OptStatus::Optimal) << threads << " threads";
      EXPECT_EQ(w.best_value, c.optimum);
      EXPECT_EQ(n.best_value, w.best_value) << threads << " threads";
      EXPECT_TRUE(enc.formula.satisfied_by(n.model));
    }
  }
}

TEST(PbAnalysisEquivalence, BinarySearchOptimizerMatchesAcrossModes) {
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_coloring(g, 7, SbpOptions::nu_sc());
  SolverConfig native = profile_config(SolverKind::Galena);
  native.portfolio_threads = 2;
  const OptResult b = minimize_binary(enc.formula, native, Deadline{});
  ASSERT_EQ(b.status, OptStatus::Optimal);
  EXPECT_EQ(b.best_value, 5);
}

// ---- int64 overflow guards (construction and solving) ----

TEST(PbOverflow, CoefficientSumOverflowRejectedAtConstruction) {
  // True coefficient sum is 3 * (kMax/2 + 1) > int64: before the checked
  // normalization this wrapped negative, is_contradiction() reported
  // true, and the solver returned Unsat for a satisfiable constraint.
  const std::int64_t big = kMax / 2 + 1;
  EXPECT_THROW((void)PbConstraint::at_least({{big, Lit::positive(0)},
                                             {big, Lit::positive(1)},
                                             {big, Lit::positive(2)}},
                                            kMax),
               std::overflow_error);
}

TEST(PbOverflow, SameVariableMergeOverflowRejected) {
  // Merging two kMax/2+1 coefficients on one variable overflowed the
  // per-variable accumulator and produced a negative-coefficient term.
  const std::int64_t big = kMax / 2 + 1;
  EXPECT_THROW((void)PbConstraint::at_least(
                   {{big, Lit::positive(0)}, {big, Lit::positive(0)}}, 5),
               std::overflow_error);
  // The negation shift overflows the same way.
  EXPECT_THROW((void)PbConstraint::at_least(
                   {{big, Lit::negative(0)}, {big, Lit::negative(1)},
                    {big, Lit::negative(2)}},
                   5),
               std::overflow_error);
  EXPECT_THROW((void)PbConstraint::at_most({{1, Lit::positive(0)}},
                                           std::numeric_limits<std::int64_t>::min()),
               std::overflow_error);
}

TEST(PbOverflow, Int64MinCoefficientsRejectedNotNegated) {
  // Negating INT64_MIN is signed-overflow UB; every normalization path
  // that flips a sign (negated-literal merge, the shift, negative net
  // coefficients, at_most conversion) must reject it instead.
  const std::int64_t lowest = std::numeric_limits<std::int64_t>::min();
  EXPECT_THROW((void)PbConstraint::at_least({{lowest, Lit::negative(0)}}, 0),
               std::overflow_error);
  EXPECT_THROW((void)PbConstraint::at_least({{lowest, Lit::positive(0)}}, 0),
               std::overflow_error);
  EXPECT_THROW((void)PbConstraint::at_most({{lowest, Lit::positive(0)}}, 0),
               std::overflow_error);
}

TEST(PbOverflow, NearMaxRepresentableCoefficientsSolveCorrectly) {
  // Constraints whose normal form stays within int64 must keep working at
  // the edge, in both analysis modes.
  const std::int64_t big = kMax / 2;
  for (const PbAnalysis mode :
       {PbAnalysis::Weaken, PbAnalysis::CuttingPlanes}) {
    Formula f;
    const Var x = f.new_var();
    const Var y = f.new_var();
    const Var z = f.new_var();
    // big*x + big*y >= 2*big - 1 forces both x and y.
    f.add_pb(PbConstraint::at_least(
        {{big, Lit::positive(x)}, {big, Lit::positive(y)}}, 2 * big - 1));
    // big*y + (big-1)*z >= big: satisfied by y alone.
    f.add_pb(PbConstraint::at_least(
        {{big, Lit::positive(y)}, {big - 1, Lit::positive(z)}}, big));
    SolverConfig config;
    config.pb_analysis = mode;
    CdclSolver solver(f, config);
    ASSERT_EQ(solver.solve(), SolveResult::Sat);
    EXPECT_EQ(solver.model()[static_cast<std::size_t>(x)], LBool::True);
    EXPECT_EQ(solver.model()[static_cast<std::size_t>(y)], LBool::True);
    EXPECT_TRUE(f.satisfied_by(solver.model()));
  }
}

TEST(PbOverflow, SingleMaxCoefficientPropagates) {
  Formula f;
  const Var x = f.new_var();
  f.add_pb(PbConstraint::at_least({{kMax, Lit::positive(x)}}, kMax));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(x)], LBool::True);
}

TEST(PbOverflow, HugeCoefficientConflictsStaySound) {
  // Weighted conflicts whose resolvents may overflow during scaling: the
  // checked arithmetic either completes the native analysis or falls back
  // to weakening — the answer must match brute force either way.
  Rng rng(0xB16C0EF);
  for (int round = 0; round < 10; ++round) {
    const int vars = 6;
    Formula f;
    f.new_vars(vars);
    for (int c = 0; c < 5; ++c) {
      std::vector<PbTerm> terms;
      for (int i = 0; i < 3; ++i) {
        // Coefficients in [kMax/9, kMax/9 + 255]: individually huge, and
        // mutually coprime-ish so resolution multipliers get large fast.
        terms.push_back(
            {kMax / 9 + static_cast<std::int64_t>(rng.below(256)),
             Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5))});
      }
      const std::int64_t bound =
          kMax / 9 + static_cast<std::int64_t>(rng.below(1024));
      f.add_pb(PbConstraint::at_least(std::move(terms), bound));
    }
    for (int c = 0; c < 4; ++c) {
      Clause clause;
      for (int i = 0; i < 2; ++i) {
        clause.push_back(
            Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
      }
      f.add_clause(std::move(clause));
    }
    SolverConfig config;
    config.pb_analysis = PbAnalysis::CuttingPlanes;
    CdclSolver solver(f, config);
    const SolveResult r = solver.solve();
    ASSERT_NE(r, SolveResult::Unknown);
    EXPECT_EQ(r == SolveResult::Sat, brute_force_sat(f)) << "round " << round;
    if (r == SolveResult::Sat) {
      EXPECT_TRUE(f.satisfied_by(solver.model()));
    }
  }
}

}  // namespace
}  // namespace symcolor
